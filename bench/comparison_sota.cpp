// Sections I / IV-B: comparison against the state of the art. The paper
// positions the proposed 8 uA sample-and-hold against: hill climbing
// (needs a microcontroller) [2], 100 ms-sampling FOCV at 2 mW [4], the
// pilot-cell harvester at ~300 uW [5], the photodetector-based AmbiMax
// at ~500 uA [6], no-MPPT direct connection [7], and fixed-voltage
// operation via a reference IC [8]. The claim: only the proposed system
// can afford MPPT across the full indoor..outdoor range.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <iostream>
#include <memory>
#include <vector>

#include "bench_common.hpp"
#include "common/table.hpp"
#include "core/focv_system.hpp"
#include "env/profiles.hpp"
#include "mppt/baselines.hpp"
#include "node/harvester_node.hpp"
#include "pv/cell_library.hpp"

namespace {

using namespace focv;

struct Entry {
  std::string name;
  std::unique_ptr<mppt::MpptController> controller;
};

std::vector<Entry> make_controllers() {
  std::vector<Entry> out;
  out.push_back({"proposed (FOCV S&H)",
                 std::make_unique<mppt::FocvSampleHoldController>(core::make_paper_controller())});
  out.push_back({"hill climbing [2]", std::make_unique<mppt::HillClimbingController>()});
  out.push_back({"inc. conductance [2]",
                 std::make_unique<mppt::IncrementalConductanceController>()});
  out.push_back({"100 ms FOCV [4]",
                 std::make_unique<mppt::PeriodicDisconnectFocvController>()});
  out.push_back({"pilot cell [5]", std::make_unique<mppt::PilotCellFocvController>()});
  out.push_back({"photodetector [6]", std::make_unique<mppt::PhotodetectorController>(
                                          mppt::PhotodetectorController::calibrate(
                                              500.0, 3.18, 5000.0, 3.22))});
  out.push_back({"no MPPT, direct [7]", std::make_unique<mppt::DirectConnectionController>()});
  out.push_back({"fixed voltage [8]", std::make_unique<mppt::FixedVoltageController>()});
  return out;
}

void run_scenario(const std::string& title, const env::LightTrace& trace) {
  std::printf("\n--- scenario: %s ---\n", title.c_str());
  ConsoleTable table({"technique", "overhead", "harvest [J]", "net [J]", "track eff",
                      "verdict"});
  double proposed_net = 0.0;
  auto controllers = make_controllers();
  for (auto& entry : controllers) {
    node::NodeConfig cfg;
    cfg.cell = &pv::sanyo_am1815();
    cfg.controller = entry.controller.get();
    cfg.storage.initial_voltage = 3.0;
    cfg.load.report_period = 300.0;
    const node::NodeReport r = node::simulate_node(trace, cfg);
    const double net = r.net_energy();
    if (entry.name.rfind("proposed", 0) == 0) proposed_net = net;
    std::string verdict;
    if (r.coldstart_time < 0.0) {
      verdict = "cannot run (supply floor)";
    } else if (net <= 0.0) {
      verdict = "net loss";
    } else if (net >= proposed_net * 0.98) {
      verdict = "competitive";
    } else {
      verdict = "behind proposed";
    }
    char overhead[32];
    std::snprintf(overhead, sizeof overhead, "%7.1f uW",
                  entry.controller->overhead_power() * 1e6);
    table.add_row({entry.name, overhead, ConsoleTable::num(r.harvested_energy, 3),
                   ConsoleTable::num(net, 3),
                   ConsoleTable::num(r.tracking_efficiency() * 100.0, 1) + " %", verdict});
  }
  table.print(std::cout);
}

void reproduce_comparison() {
  bench::print_header(
      "Sections I / IV-B -- comparison against state-of-the-art systems",
      "outdoor-grade trackers are too power-hungry indoors; the proposed 8 uA S&H "
      "makes MPPT profitable from 200 lux up");

  run_scenario("office, constant 500 lux, 4 h",
               env::constant_light(500.0, 0.0, 4.0 * 3600.0));
  run_scenario("dim indoor, constant 200 lux, 4 h",
               env::constant_light(200.0, 0.0, 4.0 * 3600.0));
  run_scenario("24 h office desk (Fig. 2 conditions)", env::office_desk_mixed());
  run_scenario("24 h semi-mobile day (indoor + outdoor lunch)", env::semi_mobile_day());
  run_scenario("24 h outdoors", env::outdoor_day());

  bench::print_note(
      "Shape reproduced: indoors only the proposed system (and the near-passive "
      "fixed-voltage/no-MPPT baselines) net positive energy -- the uC/photodetector/"
      "100 ms techniques cannot even power themselves; outdoors everything works and "
      "the proposed system stays competitive with the 1 mW hill climber while "
      "spending 25 uW.");
}

void bm_one_day_simulation(benchmark::State& state) {
  const env::LightTrace trace = env::office_desk_mixed();
  auto ctl = core::make_paper_controller();
  node::NodeConfig cfg;
  cfg.cell = &pv::sanyo_am1815();
  cfg.controller = &ctl;
  cfg.storage.initial_voltage = 3.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(node::simulate_node(trace, cfg));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(trace.size()));
}
BENCHMARK(bm_one_day_simulation)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  reproduce_comparison();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
