// Fig. 4: detail of one sampling operation at 1000 lux, simulated at
// circuit level (PULSE disconnects all loads, the PV floats to Voc, the
// HELD_SAMPLE line updates; R3/C3 mitigates the ripple).
#include <benchmark/benchmark.h>

#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "circuit/transient.hpp"
#include "common/ascii_plot.hpp"
#include "common/table.hpp"
#include "core/netlists.hpp"
#include "pv/cell_library.hpp"

namespace {

using namespace focv;
using namespace focv::circuit;

Trace run_system(double lux, double t_stop) {
  Circuit ckt;
  pv::Conditions c;
  c.illuminance_lux = lux;
  core::build_fig3_system(ckt, pv::sanyo_am1815(), c, core::SystemSpec{});
  TransientOptions opt;
  opt.t_stop = t_stop;
  opt.start_from_dc = false;
  opt.dt_initial = 1e-6;
  opt.dt_max = 0.25;
  opt.dv_step_max = 0.4;
  return transient_analyze(ckt, opt);
}

void plot_window(const Trace& tr, double t0, double t1, int points,
                 const std::string& title) {
  std::vector<double> t_ms, pulse, held, pvv;
  for (int i = 0; i <= points; ++i) {
    const double t = t0 + (t1 - t0) * i / points;
    t_ms.push_back(t * 1e3);
    pulse.push_back(tr.at("sys_ast_pulse", t));
    held.push_back(tr.at("sys_sh_held", t));
    pvv.push_back(tr.at("sys_pv", t));
  }
  AsciiPlotOptions opt;
  opt.title = title;
  opt.x_label = "time [ms]";
  opt.y_label = "voltage [V]";
  ascii_plot(std::cout,
             {{t_ms, pulse, 'P', "PULSE"},
              {t_ms, pvv, 'v', "PV_IN"},
              {t_ms, held, 'H', "HELD_SAMPLE"}},
             opt);
}

void reproduce_fig4() {
  bench::print_header(
      "Fig. 4 -- sampling operation at 1000 lux (circuit-level transient)",
      "PULSE high ~39 ms disconnects all loads; HELD_SAMPLE updates to ~1.62 V with a "
      "small ripple mitigated by R3/C3");

  // Capture the start-up sample plus one full period so the second
  // (steady-state) sampling operation is visible.
  const Trace tr = run_system(1000.0, 70.5);

  // Window 1: the first sampling operation in detail.
  plot_window(tr, 0.0, 0.12, 96, "First sampling operation (cold start), 0..120 ms");

  // Window 2: the steady-state sampling operation at ~69 s.
  const auto rises = tr.crossing_times("sys_ast_pulse", 1.65, true);
  ConsoleTable table({"quantity", "paper", "this run"});
  if (rises.size() >= 2) {
    const double t_r = rises[1];
    plot_window(tr, t_r - 0.02, t_r + 0.10, 96, "Steady-state sampling operation");
    const auto falls = tr.crossing_times("sys_ast_pulse", 1.65, false);
    double t_on = 0.0;
    for (const double f : falls) {
      if (f > t_r) {
        t_on = f - t_r;
        break;
      }
    }
    pv::Conditions c;
    c.illuminance_lux = 1000.0;
    const double voc = pv::sanyo_am1815().open_circuit_voltage(c);
    table.add_row({"PULSE 'on' period", "39 ms", ConsoleTable::num(t_on * 1e3, 1) + " ms"});
    table.add_row({"PULSE period", "69 s", ConsoleTable::num(rises[1] - rises[0], 2) + " s"});
    table.add_row({"PV floats to Voc during PULSE", ConsoleTable::num(voc, 3) + " V",
                   ConsoleTable::num(tr.maximum("sys_pv", t_r, t_r + t_on), 3) + " V"});
    table.add_row({"HELD_SAMPLE after update", "1.624 V (Table I)",
                   ConsoleTable::num(tr.at("sys_sh_held", t_r + 5.0), 3) + " V"});
    // Ripple on HELD during the operation (paper: "a small ripple may
    // be observed ... mitigated by the combination of R3 and C3").
    const double ripple = tr.maximum("sys_sh_held", t_r, t_r + t_on) -
                          tr.minimum("sys_sh_held", t_r, t_r + t_on);
    table.add_row({"HELD ripple during sampling", "small",
                   ConsoleTable::num(ripple * 1e3, 1) + " mV"});
    // Droop across the 69 s hold.
    const double droop = tr.at("sys_sh_held", 1.0) - tr.at("sys_sh_held", t_r - 0.05);
    table.add_row({"hold droop across 69 s", "(low-leakage polyester cap)",
                   ConsoleTable::num(droop * 1e3, 2) + " mV"});
  }
  table.print(std::cout);
}

void bm_fig4_transient(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_system(1000.0, 1.0));
  }
}
BENCHMARK(bm_fig4_transient)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  reproduce_fig4();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
