// Section IV-B: "The cold-start of the system has been observed down to
// light levels of 200 lux" and "the system has been shown to cold-start
// and quickly generate a signal on the PULSE line".
#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "circuit/transient.hpp"
#include "common/ascii_plot.hpp"
#include "common/table.hpp"
#include "core/netlists.hpp"
#include "power/coldstart.hpp"
#include "pv/cell_library.hpp"

namespace {

using namespace focv;

void reproduce_coldstart() {
  bench::print_header("Section IV-B -- cold start",
                      "cold start observed down to 200 lux; first PULSE generated quickly");

  // Behavioural sweep: time from a fully dead system to MPPT-on.
  power::ColdStartCircuit cs;
  const auto& cell = pv::sanyo_am1815();
  ConsoleTable table({"lux", "time to threshold [s]", "can start?"});
  for (const double lux : {10.0, 50.0, 100.0, 200.0, 500.0, 1000.0, 2000.0, 5000.0}) {
    pv::Conditions c;
    c.illuminance_lux = lux;
    const double t = cs.time_to_start(cell, c);
    table.add_row({ConsoleTable::num(lux, 0),
                   std::isinf(t) ? "inf" : ConsoleTable::num(t, 2),
                   std::isinf(t) ? "no" : "yes"});
  }
  table.print(std::cout);

  // Minimum startable illuminance (bisection on the behavioural model).
  double lo = 0.1, hi = 200.0;
  for (int i = 0; i < 40; ++i) {
    const double mid = 0.5 * (lo + hi);
    pv::Conditions c;
    c.illuminance_lux = mid;
    if (std::isinf(cs.time_to_start(cell, c))) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  std::printf("minimum startable illuminance (model): %.2f lux "
              "(paper validated down to its 200 lux test floor)\n",
              hi);

  // Circuit-level cold start at 200 lux: C1 charging, the UVLO switch
  // firing and the astable's first PULSE.
  circuit::Circuit ckt;
  pv::Conditions c;
  c.illuminance_lux = 200.0;
  core::build_coldstart(ckt, cell, c, core::SystemSpec{});
  circuit::TransientOptions opt;
  opt.t_stop = 8.0;
  opt.start_from_dc = false;
  opt.dt_initial = 1e-5;
  opt.dt_max = 0.05;
  opt.dv_step_max = 0.4;
  const circuit::Trace tr = circuit::transient_analyze(ckt, opt);

  std::vector<double> t_s, c1, vdd, pulse;
  for (int i = 0; i <= 160; ++i) {
    const double t = 8.0 * i / 160.0;
    t_s.push_back(t);
    c1.push_back(tr.at("cs_c1", t));
    vdd.push_back(tr.at("cs_vdd", t));
    pulse.push_back(tr.at("cs_ast_pulse", t));
  }
  AsciiPlotOptions popt;
  popt.title = "Circuit-level cold start at 200 lux";
  popt.x_label = "time [s]";
  popt.y_label = "voltage [V]";
  ascii_plot(std::cout,
             {{t_s, c1, 'c', "C1 (cold-start reservoir)"},
              {t_s, vdd, 'r', "switched MPPT rail"},
              {t_s, pulse, 'P', "PULSE"}},
             popt);

  const auto c1_cross = tr.crossing_times("cs_c1", 2.2, true);
  const auto pulse_rise = tr.crossing_times("cs_ast_pulse", 1.0, true);
  ConsoleTable events({"event", "time [s]"});
  if (!c1_cross.empty()) {
    events.add_row({"C1 reaches the 2.2 V enable threshold",
                    ConsoleTable::num(c1_cross[0], 2)});
  }
  if (!pulse_rise.empty()) {
    events.add_row({"first PULSE (first Voc measurement)",
                    ConsoleTable::num(pulse_rise[0], 2)});
  }
  events.print(std::cout);
}

void bm_coldstart_netlist(benchmark::State& state) {
  for (auto _ : state) {
    circuit::Circuit ckt;
    pv::Conditions c;
    c.illuminance_lux = 200.0;
    core::build_coldstart(ckt, pv::sanyo_am1815(), c, core::SystemSpec{});
    circuit::TransientOptions opt;
    opt.t_stop = 2.0;
    opt.start_from_dc = false;
    opt.dt_initial = 1e-5;
    opt.dt_max = 0.05;
    opt.dv_step_max = 0.4;
    benchmark::DoNotOptimize(circuit::transient_analyze(ckt, opt));
  }
}
BENCHMARK(bm_coldstart_netlist)->Unit(benchmark::kMillisecond);

void bm_time_to_start(benchmark::State& state) {
  power::ColdStartCircuit cs;
  pv::Conditions c;
  c.illuminance_lux = 200.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cs.time_to_start(pv::sanyo_am1815(), c));
  }
}
BENCHMARK(bm_time_to_start);

}  // namespace

int main(int argc, char** argv) {
  reproduce_coldstart();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
