// Extension bench: the paper's Section I claim that the technique "is
// also applicable to other forms of energy harvesting (such as
// thermoelectric generators) which feature a similar relationship
// between the open-circuit and MPP voltage [9]".
//
// A TEG is a Thevenin source, so Vmpp = Voc/2 exactly: FOCV with the
// divider trimmed to k = 0.5 is the *optimal* controller, and the 25 uW
// metrology overhead is negligible against even a body-worn TEG.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "common/ascii_plot.hpp"
#include "common/table.hpp"
#include "teg/teg_harvest.hpp"

namespace {

using namespace focv;

void reproduce_teg_extension() {
  bench::print_header(
      "Extension -- FOCV sample-and-hold on thermoelectric generators",
      "Section I: the technique applies to TEGs (Vmpp = k * Voc with k = 1/2 exactly)");

  // Static accuracy: FOCV at k = 0.5 across the dT range.
  auto ctl = teg::make_teg_controller();
  ConsoleTable table({"source", "dT [K]", "Voc [V]", "Vmpp [V]", "FOCV setpoint [V]",
                      "tracking eff [%]"});
  struct Case {
    const teg::TegModel* teg;
    double dt;
  };
  const Case cases[] = {
      {&teg::body_worn_teg(), 1.0},  {&teg::body_worn_teg(), 3.0},
      {&teg::body_worn_teg(), 6.0},  {&teg::industrial_teg(), 15.0},
      {&teg::industrial_teg(), 35.0}, {&teg::industrial_teg(), 60.0},
  };
  for (const Case& cs : cases) {
    teg::ThermalConditions c;
    c.delta_t = cs.dt;
    const double voc = cs.teg->open_circuit_voltage(c);
    ctl.reset();
    mppt::SensedInputs s;
    s.time = 0.0;
    s.dt = 1.0;
    s.voc = voc;
    const double v_cmd = ctl.step(s).pv_voltage;
    table.add_row({cs.teg->params().name, ConsoleTable::num(cs.dt, 0),
                   ConsoleTable::num(voc, 2), ConsoleTable::num(cs.teg->mpp_voltage(c), 2),
                   ConsoleTable::num(v_cmd, 2),
                   ConsoleTable::num(cs.teg->tracking_efficiency(v_cmd, c) * 100.0, 2)});
  }
  table.print(std::cout);

  // A body-worn day.
  const teg::ThermalTrace day = teg::body_worn_thermal_day();
  auto ctl_day = teg::make_teg_controller();
  const teg::TegHarvestReport r = teg::harvest_teg(teg::body_worn_teg(), day, ctl_day);
  ConsoleTable summary({"body-worn TEG day", "value"});
  summary.add_row({"matched-load (ideal) energy", ConsoleTable::num(r.ideal_energy, 2) + " J"});
  summary.add_row({"harvested by FOCV S&H", ConsoleTable::num(r.harvested_energy, 2) + " J"});
  summary.add_row({"tracking efficiency",
                   ConsoleTable::num(r.tracking_efficiency() * 100.0, 1) + " %"});
  summary.add_row({"metrology overhead", ConsoleTable::num(r.overhead_energy, 3) + " J"});
  summary.add_row({"net energy", ConsoleTable::num(r.net_energy(), 2) + " J"});
  summary.print(std::cout);

  // dT across the day (the driver of the trace).
  std::vector<double> hours, dts;
  for (std::size_t i = 0; i < day.time.size(); i += 300) {
    hours.push_back(day.time[i] / 3600.0);
    dts.push_back(day.delta_t[i]);
  }
  AsciiPlotOptions opt;
  opt.title = "Body-worn temperature difference across the day";
  opt.x_label = "time of day [h]";
  opt.y_label = "dT [K]";
  opt.height = 10;
  ascii_plot(std::cout, {{hours, dts, '*', "dT"}}, opt);

  bench::print_note(
      "On a Thevenin source the FOCV approximation becomes exact, so the residual "
      "tracking loss is purely the sample-and-hold's own non-idealities (droop, "
      "offsets) plus the dead time below the metrology's Voc floor.");
}

void bm_teg_day(benchmark::State& state) {
  const teg::ThermalTrace day = teg::body_worn_thermal_day();
  auto ctl = teg::make_teg_controller();
  for (auto _ : state) {
    benchmark::DoNotOptimize(teg::harvest_teg(teg::body_worn_teg(), day, ctl));
  }
}
BENCHMARK(bm_teg_day)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  reproduce_teg_extension();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
