// Section IV-A power figures: the astable multivibrator produced an 'on'
// period of 39 ms and an 'off' period of 69 s; the combination of the
// astable and the sample-and-hold drew an average of 7.6 uA at 3.3 V --
// under 20% of the AM-1815's output at 200 lux.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "circuit/devices_sources.hpp"
#include "circuit/transient.hpp"
#include "common/table.hpp"
#include "core/focv_system.hpp"
#include "core/netlists.hpp"
#include "pv/cell_library.hpp"

namespace {

using namespace focv;
using namespace focv::circuit;

void reproduce_power_budget() {
  bench::print_header(
      "Section IV-A -- metrology power budget",
      "astable+S&H average draw 7.6 uA at 3.3 V; 39 ms on / 69 s off; <20% of the "
      "cell's 42 uA at 200 lux");

  const core::SystemSpec spec;

  // Itemised behavioural budget.
  const analog::PowerBudget budget = core::paper_power_budget(spec);
  budget.print(std::cout, spec.supply_voltage);

  // Circuit-level validation: measure the supply current of the full
  // Fig. 3 netlist across one astable period.
  Circuit ckt;
  pv::Conditions c;
  c.illuminance_lux = 1000.0;
  core::build_fig3_system(ckt, pv::sanyo_am1815(), c, spec);
  TransientOptions opt;
  opt.t_stop = 75.0;
  opt.start_from_dc = false;
  opt.dt_initial = 1e-6;
  opt.dt_max = 0.25;
  opt.dv_step_max = 0.4;
  const Trace tr = transient_analyze(ckt, opt);
  const double i_netlist = -tr.time_average("I(sys_vdd)", 5.0, 74.0);

  const auto rises = tr.crossing_times("sys_ast_pulse", 1.65, true);
  const auto falls = tr.crossing_times("sys_ast_pulse", 1.65, false);
  double t_on = 0.0, period = 0.0;
  if (rises.size() >= 2) {
    period = rises[1] - rises[0];
    for (const double f : falls) {
      if (f > rises[1]) {
        t_on = f - rises[1];
        break;
      }
    }
  }

  const auto ctl = core::make_paper_controller(spec);
  pv::Conditions c200;
  c200.illuminance_lux = 200.0;
  const pv::MppResult mpp200 = pv::sanyo_am1815().maximum_power_point(c200);

  ConsoleTable table({"quantity", "paper", "this reproduction"});
  table.add_row({"astable 'on' period", "39 ms",
                 ConsoleTable::num(t_on * 1e3, 1) + " ms (netlist)"});
  table.add_row({"astable 'off' period", "69 s",
                 ConsoleTable::num(period - t_on, 2) + " s (netlist)"});
  table.add_row({"astable+S&H average current", "7.6 uA",
                 ConsoleTable::num(ctl.average_current() * 1e6, 2) + " uA (budget)"});
  table.add_row({"netlist supply current (w/o board leakage)", "--",
                 ConsoleTable::num(i_netlist * 1e6, 2) + " uA"});
  table.add_row({"worst-case draw", "8 uA",
                 ConsoleTable::num(ctl.average_current() * 1.05 * 1e6, 2) + " uA (+5%)"});
  table.add_row({"cell MPP at 200 lux", "42 uA / 3.0 V",
                 ConsoleTable::num(mpp200.current * 1e6, 1) + " uA / " +
                     ConsoleTable::num(mpp200.voltage, 2) + " V"});
  table.add_row({"S&H current / cell current @200 lux", "< 20% (8/42)",
                 ConsoleTable::num(ctl.average_current() / mpp200.current * 100.0, 1) + " %"});
  table.add_row({"S&H power / cell power @200 lux", "< 18-20%",
                 ConsoleTable::num(ctl.overhead_power() / mpp200.power * 100.0, 1) + " %"});
  table.add_row({"vs fixed-voltage reference IC [8]", "S&H draws less",
                 ConsoleTable::num(ctl.average_current() * 1e6, 1) + " uA < 11 uA"});
  table.print(std::cout);
}

void bm_budget_evaluation(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::paper_power_budget().total_current());
  }
}
BENCHMARK(bm_budget_evaluation);

void bm_astable_period_netlist(benchmark::State& state) {
  for (auto _ : state) {
    Circuit ckt;
    const NodeId vdd = ckt.node("vdd");
    ckt.add<VoltageSource>("Vdd", vdd, kGround, Waveform::dc(3.3));
    core::build_astable(ckt, vdd, core::SystemSpec{});
    TransientOptions opt;
    opt.t_stop = 75.0;
    opt.start_from_dc = false;
    opt.dt_initial = 1e-5;
    opt.dt_max = 0.5;
    opt.dv_step_max = 0.4;
    benchmark::DoNotOptimize(transient_analyze(ckt, opt));
  }
}
BENCHMARK(bm_astable_period_netlist)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  reproduce_power_budget();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
