// The standard microbenchmark suite: hot paths of the behavioural tier.
//
// Full-size workloads mirror the repo's real evaluation shapes (24 h
// scenario days, the Table-I sweep matrix, a Fig.-4 transient window);
// --smoke shrinks every case to a seconds-scale CI gate with identical
// code paths.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "circuit/transient.hpp"
#include "common/require.hpp"
#include "core/focv_system.hpp"
#include "core/netlists.hpp"
#include "env/profiles.hpp"
#include "fleet/fleet.hpp"
#include "harness.hpp"
#include "mppt/baselines.hpp"
#include "node/curve_cache.hpp"
#include "node/harvester_node.hpp"
#include "node/sizing.hpp"
#include "obs/obs.hpp"
#include "pv/cell_library.hpp"
#include "runtime/sweep.hpp"
#include "runtime/thread_pool.hpp"
#include "sched/prepared_trace.hpp"
#include "serve/client.hpp"
#include "serve/json.hpp"
#include "serve/server.hpp"

namespace focv::microbench {
namespace {

node::NodeConfig node_config(node::PowerModel model) {
  node::NodeConfig cfg;
  cfg.use_cell(pv::sanyo_am1815());
  cfg.use_controller(core::make_paper_controller());
  cfg.storage.initial_voltage = 3.0;
  cfg.power_model = model;
  return cfg;
}

Counters report_counters(const node::NodeReport& r) {
  return {{"steps", static_cast<double>(r.steps)},
          {"model_evals", static_cast<double>(r.model_evals)},
          {"curve_entries", static_cast<double>(r.curve_entries)},
          {"tracking_efficiency", r.tracking_efficiency()}};
}

CaseSpec simulate_node_case(std::string name, std::string description, bool indoor,
                            node::PowerModel model) {
  CaseSpec spec;
  spec.name = std::move(name);
  spec.description = std::move(description);
  spec.make = [indoor, model](bool smoke) {
    // The trace is workload input, not the code under test: build once.
    env::LightTrace trace =
        smoke ? env::constant_light(indoor ? 500.0 : 20000.0, 0.0, 600.0)
              : (indoor ? env::office_desk_mixed(env::OfficeDayParams{})
                        : env::outdoor_day({}));
    node::NodeConfig cfg = node_config(model);
    return [trace = std::move(trace), cfg = std::move(cfg)]() -> Counters {
      const node::NodeReport report = node::simulate_node(trace, cfg);
      return report_counters(report);
    };
  };
  return spec;
}

CaseSpec simulate_node_event_case(std::string name, std::string description, bool indoor) {
  CaseSpec spec;
  spec.name = std::move(name);
  spec.description = std::move(description);
  spec.make = [indoor](bool smoke) {
    // shared_ptr (not a by-value capture): the PreparedTrace holds the
    // trace by reference, so its address must survive the closure copy.
    auto trace = std::make_shared<const env::LightTrace>(
        smoke ? env::constant_light(indoor ? 500.0 : 20000.0, 0.0, 600.0)
              : (indoor ? env::office_desk_mixed(env::OfficeDayParams{})
                        : env::outdoor_day({})));
    node::NodeConfig cfg = node_config(node::PowerModel::kSurrogate);
    cfg.stepper = node::Stepper::kEvent;
    // The event stepper's deployment mode (fleet chunks, sweeps) shares
    // one PreparedTrace per environment and a warm CurveCache across
    // runs, so the per-run cost is O(events). Build both here and run
    // once so the timed closure measures that steady state rather than
    // the one-time O(trace) preprocessing the sharing amortises away.
    env::SegmentationOptions seg;
    seg.ratio_band = cfg.events.lux_ratio_band;
    seg.floor = node::CurveCache::kDarkLux;
    auto prep = std::make_shared<sched::PreparedTrace>(*trace, *cfg.cell_model, seg);
    auto cache = std::make_shared<node::CurveCache>(
        *cfg.cell_model, cfg.temperature_k,
        node::CurveCache::Options{cfg.power_model, cfg.surrogate_points});
    (void)node::simulate_node(*trace, cfg, cache.get(), prep.get());
    return [trace = std::move(trace), cfg = std::move(cfg), prep = std::move(prep),
            cache = std::move(cache)]() -> Counters {
      const node::NodeReport report =
          node::simulate_node(*trace, cfg, cache.get(), prep.get());
      Counters c = report_counters(report);
      c.emplace_back("events", static_cast<double>(report.events));
      return c;
    };
  };
  return spec;
}

runtime::SweepSpec sweep_spec(bool smoke) {
  runtime::SweepSpec spec;
  spec.add_cell("AM-1815", pv::sanyo_am1815());
  spec.add_cell("Schott", pv::schott_asi_1116929());
  spec.add_controller("proposed", core::make_paper_controller());
  spec.add_controller("fixed", mppt::FixedVoltageController{});
  spec.add_controller("pilot", mppt::PilotCellFocvController{});
  const double duration = smoke ? 300.0 : 4.0 * 3600.0;
  spec.add_scenario("lux200", env::constant_light(200.0, 0.0, duration));
  spec.add_scenario("lux1000", env::constant_light(1000.0, 0.0, duration));
  spec.add_scenario("lux5000", env::constant_light(5000.0, 0.0, duration));
  spec.base.storage.initial_voltage = 3.0;
  spec.base.load.report_period = 120.0;
  return spec;
}

CaseSpec sweep_case(std::string name, std::string description, int jobs) {
  CaseSpec spec;
  spec.name = std::move(name);
  spec.description = std::move(description);
  spec.make = [jobs](bool smoke) {
    // `jobs == 0` used to be forwarded verbatim, so the jobs_requested
    // counter recorded 0 and nothing checked that the pool actually
    // fanned out. Resolve it to the hardware thread count here — floored
    // at 2, because on a single-core container default_thread_count()
    // is 1 and the "N-job" case would silently measure the serial path —
    // and assert the sweep genuinely ran > 1 worker.
    const int resolved =
        jobs > 0 ? jobs : std::max(2, runtime::ThreadPool::default_thread_count());
    return [spec = sweep_spec(smoke), resolved]() -> Counters {
      runtime::SweepOptions opt;
      opt.jobs = resolved;
      const runtime::SweepResult r = runtime::run_sweep(spec, opt);
      require(r.jobs_used() == resolved,
              "sweep bench: pool did not use the requested worker count");
      if (resolved > 1) {
        require(r.jobs_used() > 1, "sweep bench: multi-job case ran single-threaded");
      }
      return {{"jobs_requested", static_cast<double>(resolved)},
              {"jobs_used", static_cast<double>(r.jobs_used())},
              {"records", static_cast<double>(r.records().size())},
              {"total_steps", static_cast<double>(r.total_steps())},
              {"total_model_evals", static_cast<double>(r.total_model_evals())}};
    };
  };
  return spec;
}

CaseSpec circuit_transient_case() {
  CaseSpec spec;
  spec.name = "circuit_transient_window";
  spec.description =
      "Fig.-3 system netlist, adaptive transient across the first sampling "
      "operation (120 ms full, 20 ms smoke)";
  spec.make = [](bool smoke) {
    const double t_stop = smoke ? 0.02 : 0.12;
    return [t_stop]() -> Counters {
      circuit::Circuit ckt;
      pv::Conditions c;
      c.illuminance_lux = 1000.0;
      core::build_fig3_system(ckt, pv::sanyo_am1815(), c, core::SystemSpec{});
      circuit::TransientOptions opt;
      opt.t_stop = t_stop;
      opt.start_from_dc = false;
      opt.dt_initial = 1e-6;
      opt.dt_max = 0.25;
      opt.dv_step_max = 0.4;
      const circuit::Trace tr = circuit::transient_analyze(ckt, opt);
      return {{"trace_points", static_cast<double>(tr.time().size())}};
    };
  };
  return spec;
}

CaseSpec cell_solves_case() {
  CaseSpec spec;
  spec.name = "cell_model_solves";
  spec.description =
      "raw implicit-junction solves: Voc root + MPP search + P(V) terminal "
      "solve across a log-illuminance ladder";
  spec.make = [](bool smoke) {
    const int levels = smoke ? 16 : 256;
    return [levels]() -> Counters {
      const pv::SingleDiodeModel& cell = pv::sanyo_am1815();
      pv::Conditions c;
      double checksum = 0.0;
      for (int i = 0; i < levels; ++i) {
        c.illuminance_lux = 50.0 * std::exp(7.0 * i / levels);  // 50 .. ~55k lux
        const double voc = cell.open_circuit_voltage(c);
        const pv::MppResult mpp = cell.maximum_power_point(c, voc);
        checksum += mpp.power + cell.power_at(0.75 * voc, c);
      }
      return {{"levels", static_cast<double>(levels)},
              {"solves", static_cast<double>(3 * levels)},
              {"checksum", checksum}};
    };
  };
  return spec;
}

CaseSpec fleet_step_case() {
  CaseSpec spec;
  spec.name = "fleet_step";
  spec.description =
      "64-node mixed-policy fleet over the office day through run_fleet's "
      "chunked stepper (16 nodes on a 10 min trace in smoke)";
  spec.make = [](bool smoke) {
    auto trace = std::make_shared<const env::LightTrace>(
        smoke ? env::constant_light(500.0, 0.0, 600.0)
              : env::office_desk_mixed(env::OfficeDayParams{}));
    const std::size_t nodes = smoke ? 16 : 64;
    return [trace = std::move(trace), nodes]() -> Counters {
      fleet::FleetSpec fs;
      fs.node_count = nodes;
      fs.use_cell(pv::sanyo_am1815());
      fs.add_environment("bench", trace);
      fs.add_policy("focv", 0.7);
      fs.add_policy("direct", 0.3);
      fs.base.storage.initial_voltage = 3.0;
      fs.base.load.report_period = 120.0;
      fleet::FleetOptions opt;
      opt.jobs = 1;  // measures the stepper, not the pool
      const fleet::FleetReport r = fleet::run_fleet(fs, opt);
      return {{"nodes_ok", static_cast<double>(r.nodes_ok)},
              {"total_steps", static_cast<double>(r.steps)},
              {"model_evals", static_cast<double>(r.model_evals)},
              {"energy_neutral_nodes", static_cast<double>(r.energy_neutral_nodes)},
              {"mean_tracking_efficiency", r.mean_tracking_efficiency()}};
    };
  };
  return spec;
}

CaseSpec fleet_step_event_case() {
  CaseSpec spec;
  spec.name = "fleet_step_event";
  spec.description =
      "the same 64-node mixed-policy fleet on the event-driven "
      "macro-stepper (base.stepper = kEvent); run_fleet shares one "
      "PreparedTrace per environment and warm chunk caches do the rest";
  spec.make = [](bool smoke) {
    auto trace = std::make_shared<const env::LightTrace>(
        smoke ? env::constant_light(500.0, 0.0, 600.0)
              : env::office_desk_mixed(env::OfficeDayParams{}));
    const std::size_t nodes = smoke ? 16 : 64;
    return [trace = std::move(trace), nodes]() -> Counters {
      fleet::FleetSpec fs;
      fs.node_count = nodes;
      fs.use_cell(pv::sanyo_am1815());
      fs.add_environment("bench", trace);
      fs.add_policy("focv", 0.7);
      fs.add_policy("direct", 0.3);
      fs.base.storage.initial_voltage = 3.0;
      fs.base.load.report_period = 120.0;
      fs.base.stepper = node::Stepper::kEvent;
      fleet::FleetOptions opt;
      opt.jobs = 1;  // measures the stepper, not the pool
      const fleet::FleetReport r = fleet::run_fleet(fs, opt);
      return {{"nodes_ok", static_cast<double>(r.nodes_ok)},
              {"total_steps", static_cast<double>(r.steps)},
              {"events", static_cast<double>(r.events)},
              {"model_evals", static_cast<double>(r.model_evals)},
              {"energy_neutral_nodes", static_cast<double>(r.energy_neutral_nodes)},
              {"mean_tracking_efficiency", r.mean_tracking_efficiency()}};
    };
  };
  return spec;
}

CaseSpec fleet_soa_case(std::string name, std::string description,
                        fleet::FleetEngine engine, fleet::TableMode mode,
                        fleet::SoaKernel kernel = fleet::SoaKernel::kScalar) {
  CaseSpec spec;
  spec.name = std::move(name);
  spec.description = std::move(description);
  spec.make = [engine, mode, kernel](bool smoke) {
    auto trace = std::make_shared<const env::LightTrace>(
        smoke ? env::constant_light(500.0, 0.0, 600.0)
              : env::office_desk_mixed(env::OfficeDayParams{}));
    const std::size_t nodes = smoke ? 64 : 10000;
    return [trace = std::move(trace), nodes, engine, mode, kernel]() -> Counters {
      fleet::FleetSpec fs;
      fs.node_count = nodes;
      fs.use_cell(pv::sanyo_am1815());
      fs.add_environment("bench", trace);
      // All three axes batch (focv closed form, fixed/pilot memoryless),
      // so the SoA cases time the struct-of-arrays sweep itself; the
      // _ref_event twin runs the identical roster per node.
      fs.add_policy("focv", 0.7);
      fs.add_policy("fixed", 0.15);
      fs.add_policy("pilot", 0.15);
      fs.base.storage.initial_voltage = 3.0;
      fs.base.load.report_period = 120.0;
      fs.base.stepper = node::Stepper::kEvent;
      fs.engine = engine;
      fs.table_mode = mode;
      fs.soa_kernel = kernel;
      // One SoA sweep per chunk: the default 64-node chunks would call
      // the batch engine ~150x per run and time its setup, not its loop.
      fs.chunk_size = 4096;
      fleet::FleetOptions opt;
      opt.jobs = 1;               // measures the engine, not the pool
      opt.analyze_load = false;   // load concurrency is O(nodes log nodes)
                                  // bookkeeping shared by both engines
      const fleet::FleetReport r = fleet::run_fleet(fs, opt);
      require(r.nodes_failed == 0, "fleet_soa bench: node failures");
      return {{"nodes_ok", static_cast<double>(r.nodes_ok)},
              {"total_steps", static_cast<double>(r.steps)},
              {"events", static_cast<double>(r.events)},
              {"model_evals", static_cast<double>(r.model_evals)},
              {"energy_neutral_nodes", static_cast<double>(r.energy_neutral_nodes)},
              {"mean_tracking_efficiency", r.mean_tracking_efficiency()}};
    };
  };
  return spec;
}

CaseSpec obs_overhead_soa_case(std::string name, std::string description, bool telemetry) {
  CaseSpec spec;
  spec.name = std::move(name);
  spec.description = std::move(description);
  spec.make = [telemetry](bool smoke) {
    auto trace = std::make_shared<const env::LightTrace>(
        smoke ? env::constant_light(500.0, 0.0, 600.0)
              : env::office_desk_mixed(env::OfficeDayParams{}));
    const std::size_t nodes = smoke ? 64 : 10000;
    return [trace = std::move(trace), nodes, telemetry]() -> Counters {
      // Same roster as fleet_soa_float; the toggle sits inside the timed
      // closure (see obs_overhead_case) so the enabled twin pays exactly
      // what a `--metrics` fleet run pays, aggregate flushes included.
      fleet::FleetSpec fs;
      fs.node_count = nodes;
      fs.use_cell(pv::sanyo_am1815());
      fs.add_environment("bench", trace);
      fs.add_policy("focv", 0.7);
      fs.add_policy("fixed", 0.15);
      fs.add_policy("pilot", 0.15);
      fs.base.storage.initial_voltage = 3.0;
      fs.base.load.report_period = 120.0;
      fs.base.stepper = node::Stepper::kEvent;
      fs.engine = fleet::FleetEngine::kSoa;
      fs.table_mode = fleet::TableMode::kFloat;
      fs.chunk_size = 4096;
      fleet::FleetOptions opt;
      opt.jobs = 1;
      opt.analyze_load = false;
      if (telemetry) obs::set_enabled(true);
      const fleet::FleetReport r = fleet::run_fleet(fs, opt);
      if (telemetry) {
        obs::set_enabled(false);
        obs::reset_all();
      }
      require(r.nodes_failed == 0, "obs_overhead_soa bench: node failures");
      return {{"nodes_ok", static_cast<double>(r.nodes_ok)},
              {"total_steps", static_cast<double>(r.steps)},
              {"events", static_cast<double>(r.events)},
              {"energy_neutral_nodes", static_cast<double>(r.energy_neutral_nodes)},
              {"mean_tracking_efficiency", r.mean_tracking_efficiency()}};
    };
  };
  return spec;
}

CaseSpec obs_overhead_case(std::string name, std::string description, bool telemetry) {
  CaseSpec spec;
  spec.name = std::move(name);
  spec.description = std::move(description);
  spec.make = [telemetry](bool smoke) {
    env::LightTrace trace = smoke ? env::constant_light(500.0, 0.0, 600.0)
                                  : env::office_desk_mixed(env::OfficeDayParams{});
    node::NodeConfig cfg = node_config(node::PowerModel::kSurrogate);
    return [trace = std::move(trace), cfg = std::move(cfg), telemetry]() -> Counters {
      // The toggle sits inside the timed closure on purpose: the enabled
      // case pays exactly what a `--trace` run pays, including the
      // event/metric recording; reset_all() keeps the trace buffer from
      // growing across repetitions (its cost is O(events), not timed
      // against the disabled baseline unfairly since clearing a handful
      // of vectors is microseconds against a multi-ms run).
      if (telemetry) obs::set_enabled(true);
      const node::NodeReport report = node::simulate_node(trace, cfg);
      if (telemetry) {
        obs::set_enabled(false);
        obs::reset_all();
      }
      return report_counters(report);
    };
  };
  return spec;
}

// ---------------------------------------------------------------------------
// focv::serve latency cases. An in-process Server (ephemeral loopback
// port) is started once per case and reused across repetitions; each
// timed repetition drives a pipelined burst of identical warm sizing
// requests from several client threads and reports a latency statistic
// via the "__seconds" self-timed convention — serve_sizing_p50/p99 gate
// the warm-path round-trip, serve_sizing_qps gates seconds-per-query
// (1/qps, so the 2x regression rule reads it like any other case).
// serve_sizing_oneshot times what the same query costs without the
// server resident (trace build + sizing solve, the sizing_tool path):
// the ratio against serve_sizing_p50 is the ">=10x warmer" claim.

struct ServeBurstStats {
  double p50_s = 0.0;
  double p99_s = 0.0;
  double qps = 0.0;
  double responses = 0.0;
};

ServeBurstStats serve_warm_burst(std::uint16_t port, int connections, int inflight,
                                 int total_requests) {
  using BurstClock = std::chrono::steady_clock;
  const int per_connection = total_requests / connections;
  std::vector<std::vector<double>> latencies(static_cast<std::size_t>(connections));
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  const BurstClock::time_point start = BurstClock::now();
  for (int c = 0; c < connections; ++c) {
    threads.emplace_back([&, c] {
      serve::Client client;
      std::string error;
      if (!client.connect(port, error)) {
        failures.fetch_add(1);
        return;
      }
      const std::uint64_t window = static_cast<std::uint64_t>(inflight) * 2;
      std::vector<BurstClock::time_point> sent_at(window);
      std::vector<double>& out = latencies[static_cast<std::size_t>(c)];
      out.reserve(static_cast<std::size_t>(per_connection));
      std::uint64_t next_id = 0;
      std::uint64_t outstanding = 0;
      const auto fire = [&] {
        const std::uint64_t id = next_id++;
        sent_at[id % window] = BurstClock::now();
        return client.send(R"({"op":"sizing","env":"office","id":)" +
                           std::to_string(id) + "}");
      };
      std::string payload;
      serve::Json response;
      while (static_cast<int>(next_id) < per_connection || outstanding > 0) {
        while (static_cast<int>(next_id) < per_connection &&
               outstanding < static_cast<std::uint64_t>(inflight)) {
          if (!fire()) {
            failures.fetch_add(1);
            return;
          }
          ++outstanding;
        }
        if (!client.recv(payload)) {
          failures.fetch_add(1);
          return;
        }
        --outstanding;
        const BurstClock::time_point now = BurstClock::now();
        if (!serve::Json::parse(payload, response) ||
            !response.bool_or("ok", false)) {
          failures.fetch_add(1);
          return;
        }
        const serve::Json* id = response.find("id");
        if (id != nullptr && id->is_number()) {
          const std::uint64_t got = static_cast<std::uint64_t>(id->as_number());
          out.push_back(
              std::chrono::duration<double>(now - sent_at[got % window]).count());
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const double elapsed_s =
      std::chrono::duration<double>(BurstClock::now() - start).count();
  require(failures.load() == 0, "serve bench: burst request failed");

  std::vector<double> all;
  for (std::vector<double>& part : latencies) {
    all.insert(all.end(), part.begin(), part.end());
  }
  require(!all.empty(), "serve bench: no latencies recorded");
  std::sort(all.begin(), all.end());
  ServeBurstStats stats;
  stats.responses = static_cast<double>(all.size());
  stats.p50_s = all[all.size() / 2];
  stats.p99_s = all[static_cast<std::size_t>(0.99 * static_cast<double>(all.size() - 1))];
  stats.qps = elapsed_s > 0.0 ? static_cast<double>(all.size()) / elapsed_s : 0.0;
  return stats;
}

enum class ServeStat { kP50, kP99, kSecondsPerQuery };

CaseSpec serve_case(std::string name, std::string description, ServeStat stat) {
  CaseSpec spec;
  spec.name = std::move(name);
  spec.description = std::move(description);
  spec.make = [stat](bool smoke) {
    auto server = std::make_shared<serve::Server>(serve::ServerOptions{});
    std::string error;
    require(server->start(error), "serve bench: server start failed");
    {
      // First touch builds the office environment and fills the response
      // cache — setup, not the serving path under measurement.
      serve::Client client;
      require(client.connect(server->port(), error), "serve bench: connect failed");
      std::string response;
      require(client.request(R"({"op":"sizing","env":"office","id":0})", response),
              "serve bench: warm-up failed");
    }
    const int connections = smoke ? 4 : 8;
    const int inflight = smoke ? 32 : 128;
    const int total = smoke ? 2000 : 20000;
    return [server, stat, connections, inflight, total]() -> Counters {
      const ServeBurstStats s =
          serve_warm_burst(server->port(), connections, inflight, total);
      double seconds = 0.0;
      switch (stat) {
        case ServeStat::kP50: seconds = s.p50_s; break;
        case ServeStat::kP99: seconds = s.p99_s; break;
        case ServeStat::kSecondsPerQuery: seconds = s.qps > 0.0 ? 1.0 / s.qps : 0.0; break;
      }
      return {{"__seconds", seconds},
              {"responses", s.responses},
              {"concurrent_inflight", static_cast<double>(connections * inflight)},
              {"p50_ms", s.p50_s * 1e3},
              {"p99_ms", s.p99_s * 1e3},
              {"qps", s.qps}};
    };
  };
  return spec;
}

CaseSpec serve_oneshot_case() {
  CaseSpec spec;
  spec.name = "serve_sizing_oneshot";
  spec.description =
      "the same office sizing query answered cold, no resident server: "
      "trace build + energy-neutrality solve (the one-shot sizing_tool "
      "path); compare against serve_sizing_p50 for the warm-serving gain";
  spec.make = [](bool smoke) {
    return [smoke]() -> Counters {
      env::LightTrace trace = smoke ? env::constant_light(500.0, 0.0, 600.0)
                                    : env::office_desk_mixed(env::OfficeDayParams{});
      node::SizingQuery query;
      query.use_cell(pv::sanyo_am1815());
      query.use_scenario(std::move(trace));
      query.use_controller(core::make_paper_controller());
      const node::SizingResult result = node::size_for_energy_neutrality(query);
      return {{"area_factor", result.area_factor},
              {"storage_j", result.storage_j},
              {"feasible", result.feasible ? 1.0 : 0.0}};
    };
  };
  return spec;
}

}  // namespace

void register_default_cases() {
  std::vector<CaseSpec>& r = registry();
  r.push_back(simulate_node_case(
      "simulate_node_24h_indoor_surrogate",
      "office-day 24 h behavioural run, surrogate power model (default)",
      /*indoor=*/true, node::PowerModel::kSurrogate));
  r.push_back(simulate_node_case(
      "simulate_node_24h_indoor_exact",
      "office-day 24 h behavioural run, exact per-step solves",
      /*indoor=*/true, node::PowerModel::kExact));
  r.push_back(simulate_node_case(
      "simulate_node_24h_outdoor_surrogate",
      "outdoor 24 h behavioural run, surrogate power model (default)",
      /*indoor=*/false, node::PowerModel::kSurrogate));
  r.push_back(simulate_node_case(
      "simulate_node_24h_outdoor_exact",
      "outdoor 24 h behavioural run, exact per-step solves",
      /*indoor=*/false, node::PowerModel::kExact));
  r.push_back(simulate_node_event_case(
      "simulate_node_24h_indoor_event",
      "office-day 24 h run on the event-driven macro-stepper, shared "
      "PreparedTrace + warm CurveCache (the fleet/sweep deployment mode)",
      /*indoor=*/true));
  r.push_back(simulate_node_event_case(
      "simulate_node_24h_outdoor_event",
      "outdoor 24 h run on the event-driven macro-stepper, shared "
      "PreparedTrace + warm CurveCache",
      /*indoor=*/false));
  r.push_back(sweep_case("sweep_jobs1",
                         "2 cells x 3 controllers x 3 scenarios, single-threaded",
                         /*jobs=*/1));
  r.push_back(sweep_case("sweep_jobsN",
                         "2 cells x 3 controllers x 3 scenarios, one worker per "
                         "hardware thread",
                         /*jobs=*/0));
  r.push_back(circuit_transient_case());
  r.push_back(cell_solves_case());
  r.push_back(fleet_step_case());
  r.push_back(fleet_step_event_case());
  r.push_back(fleet_soa_case(
      "fleet_soa_ref_event",
      "10k-node all-batchable roster on the per-node event stepper — the "
      "reference workload for the SoA speedup ratio",
      fleet::FleetEngine::kPerNode, fleet::TableMode::kFloat));
  r.push_back(fleet_soa_case(
      "fleet_soa_float",
      "identical roster on the struct-of-arrays engine's node-major "
      "scalar kernel, float dense tables; speedup_fleet_soa in `derived` "
      "is the per-node gain",
      fleet::FleetEngine::kSoa, fleet::TableMode::kFloat));
  r.push_back(fleet_soa_case(
      "fleet_soa_quantized",
      "identical roster on the SoA scalar kernel with int32 uV/nW tables "
      "(half the table bytes; the million-node memory mode)",
      fleet::FleetEngine::kSoa, fleet::TableMode::kQuantized));
  r.push_back(fleet_soa_case(
      "fleet_soa_simd_float",
      "identical roster on the interval-major lane-batched kernel, float "
      "tables; speedup_fleet_simd in `derived` is the lanes-over-scalar "
      "gain (byte-identical reports)",
      fleet::FleetEngine::kSoa, fleet::TableMode::kFloat,
      fleet::SoaKernel::kLanes));
  r.push_back(fleet_soa_case(
      "fleet_soa_simd_quantized",
      "identical roster on the lane-batched kernel with int32 uV/nW "
      "tables",
      fleet::FleetEngine::kSoa, fleet::TableMode::kQuantized,
      fleet::SoaKernel::kLanes));
  r.push_back(obs_overhead_case(
      "obs_overhead_disabled",
      "office-day 24 h behavioural run with focv::obs telemetry off (the "
      "branch-on-atomic no-op path)",
      /*telemetry=*/false));
  r.push_back(obs_overhead_case(
      "obs_overhead_enabled",
      "identical workload with focv::obs recording events, spans and "
      "histograms; overhead_obs_overhead in `derived` is the tax",
      /*telemetry=*/true));
  r.push_back(obs_overhead_soa_case(
      "obs_overhead_soa_disabled",
      "10k-node SoA fleet sweep with focv::obs telemetry off — the "
      "fleet-scale twin of obs_overhead_disabled",
      /*telemetry=*/false));
  r.push_back(obs_overhead_soa_case(
      "obs_overhead_soa_enabled",
      "identical SoA sweep with telemetry recording axis-run spans and "
      "fleet.soa.* counters; overhead_obs_overhead_soa is the tax",
      /*telemetry=*/true));
  r.push_back(serve_case(
      "serve_sizing_p50",
      "median round-trip of a warm sizing query against an in-process "
      "focv-serve (pipelined multi-connection burst, response-cache path)",
      ServeStat::kP50));
  r.push_back(serve_case(
      "serve_sizing_p99",
      "99th-percentile round-trip of the same warm sizing burst — the "
      "tail the CI regression gate watches",
      ServeStat::kP99));
  r.push_back(serve_case(
      "serve_sizing_qps",
      "seconds-per-query (1/qps) of the warm sizing burst, so lower is "
      "better under the standard regression rule",
      ServeStat::kSecondsPerQuery));
  r.push_back(serve_oneshot_case());
}

}  // namespace focv::microbench
