// Reproducible microbenchmark harness for the hot paths of the
// behavioural simulation tier.
//
// Unlike the bench/ reproduction binaries (which regenerate the paper's
// tables and figures), bench/micro/ answers an engineering question: how
// fast are the building blocks — a 24 h simulate_node run, the sweep
// engine, one circuit transient window, raw cell-model solves — and did
// a change make them faster or slower?
//
// Method: each case is run `warmup` times untimed, then `repetitions`
// times on a monotonic clock; the summary statistic is the median with
// the median absolute deviation (MAD) as the robust spread measure, so a
// single scheduler hiccup cannot skew a reading. Results are written as
// machine-readable JSON (schema "focv-bench-micro/v2") next to a
// human-readable table; paired *_surrogate / *_exact cases yield derived
// speedup ratios and paired *_disabled / *_enabled cases yield derived
// overhead ratios (the focv::obs telemetry tax; 1.0 = free).
//
// The CLI entry point is main_with_args() so tests can drive the whole
// harness in-process; bench/micro/main.cpp is a two-line shim.
#pragma once

#include <functional>
#include <string>
#include <utility>
#include <vector>

namespace focv::microbench {

/// Named scalar facts a case reports alongside its timing (step counts,
/// model-solve counts, efficiencies). Order is preserved into the JSON.
using Counters = std::vector<std::pair<std::string, double>>;

/// One registered benchmark case.
struct CaseSpec {
  std::string name;         ///< stable identifier (snake_case)
  std::string description;  ///< one line, lands in the JSON
  /// Factory invoked once per case run. `smoke` selects a seconds-scale
  /// workload for CI gating instead of the full-size one. The returned
  /// closure executes ONE timed repetition and reports its counters
  /// (the last repetition's counters are recorded).
  std::function<std::function<Counters()>(bool smoke)> make;
};

/// Timing summary of one executed case.
struct CaseResult {
  std::string name;
  std::string description;
  std::vector<double> seconds;  ///< per-repetition wall time
  double median_s = 0.0;
  double mad_s = 0.0;  ///< median absolute deviation of `seconds`
  double min_s = 0.0;
  Counters counters;
};

struct RunOptions {
  bool smoke = false;
  /// Timed repetitions per case; -1 = default (7, or 2 with --smoke).
  int repetitions = -1;
  /// Untimed warmup runs per case; -1 = default (1, or 0 with --smoke).
  int warmup = -1;
  std::string filter;       ///< substring filter on case names; empty = all
  std::string output_path;  ///< JSON destination; empty = stdout table only

  [[nodiscard]] int effective_repetitions() const {
    return repetitions >= 0 ? repetitions : (smoke ? 2 : 7);
  }
  [[nodiscard]] int effective_warmup() const {
    return warmup >= 0 ? warmup : (smoke ? 0 : 1);
  }
};

/// Mutable global case registry. register_default_cases() fills it with
/// the standard suite; tests may append their own.
std::vector<CaseSpec>& registry();
void register_default_cases();

/// Robust statistics helpers (exposed for tests).
[[nodiscard]] double median(std::vector<double> values);
[[nodiscard]] double median_abs_deviation(const std::vector<double>& values, double med);

/// Execute every registered case matching `options.filter`.
[[nodiscard]] std::vector<CaseResult> run_cases(const RunOptions& options);

/// Serialize results as "focv-bench-micro/v2" JSON, including derived
/// speedup ratios for every *_surrogate / *_exact case pair and derived
/// overhead ratios for every *_disabled / *_enabled case pair.
[[nodiscard]] std::string to_json(const std::vector<CaseResult>& results,
                                  const RunOptions& options);

/// Full CLI: parse flags, run, print the table, write the JSON.
/// Flags: --smoke, --repetitions=K, --warmup=K, --filter=SUBSTR,
/// --output=PATH. Returns a process exit code.
int main_with_args(const std::vector<std::string>& args);

}  // namespace focv::microbench
