#include <string>
#include <vector>

#include "harness.hpp"

int main(int argc, char** argv) {
  return focv::microbench::main_with_args(
      std::vector<std::string>(argv + 1, argv + argc));
}
