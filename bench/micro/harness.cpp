#include "harness.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <stdexcept>

namespace focv::microbench {

std::vector<CaseSpec>& registry() {
  static std::vector<CaseSpec> cases;
  return cases;
}

double median(std::vector<double> values) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const std::size_t n = values.size();
  return (n % 2 == 1) ? values[n / 2] : 0.5 * (values[n / 2 - 1] + values[n / 2]);
}

double median_abs_deviation(const std::vector<double>& values, double med) {
  std::vector<double> dev;
  dev.reserve(values.size());
  for (const double v : values) dev.push_back(std::abs(v - med));
  return median(std::move(dev));
}

std::vector<CaseResult> run_cases(const RunOptions& options) {
  const int reps = std::max(1, options.effective_repetitions());
  const int warmup = std::max(0, options.effective_warmup());

  std::vector<CaseResult> results;
  for (const CaseSpec& spec : registry()) {
    if (!options.filter.empty() &&
        spec.name.find(options.filter) == std::string::npos) {
      continue;
    }
    CaseResult r;
    r.name = spec.name;
    r.description = spec.description;

    auto body = spec.make(options.smoke);
    for (int i = 0; i < warmup; ++i) (void)body();
    for (int i = 0; i < reps; ++i) {
      const auto t0 = std::chrono::steady_clock::now();
      Counters counters = body();
      const auto t1 = std::chrono::steady_clock::now();
      // Self-timed convention: a counter named "__seconds" overrides the
      // measured repetition wall time and is stripped from the counters.
      // Cases whose statistic is not "how long did the closure run" —
      // a latency percentile, seconds-per-query of a concurrent burst —
      // report it this way and still flow through the same median/MAD
      // summary and regression gate as every other case.
      double elapsed = std::chrono::duration<double>(t1 - t0).count();
      const auto self_timed =
          std::find_if(counters.begin(), counters.end(),
                       [](const auto& c) { return c.first == "__seconds"; });
      if (self_timed != counters.end()) {
        elapsed = self_timed->second;
        counters.erase(self_timed);
      }
      r.seconds.push_back(elapsed);
      r.counters = std::move(counters);
    }
    r.median_s = median(r.seconds);
    r.mad_s = median_abs_deviation(r.seconds, r.median_s);
    r.min_s = *std::min_element(r.seconds.begin(), r.seconds.end());
    results.push_back(std::move(r));
  }
  return results;
}

namespace {

std::string num(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  // JSON has no inf/nan literals; the suite never produces them, but a
  // schema-valid file beats a surprising parse error if a case ever does.
  if (!std::isfinite(v)) return "null";
  return buf;
}

std::string quoted(const std::string& s) {
  std::string out = "\"";
  for (const char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

std::string to_json(const std::vector<CaseResult>& results, const RunOptions& options) {
  std::string out = "{\n";
  out += "  \"schema\": \"focv-bench-micro/v2\",\n";
  out += std::string("  \"smoke\": ") + (options.smoke ? "true" : "false") + ",\n";
  out += "  \"repetitions\": " + std::to_string(options.effective_repetitions()) + ",\n";
  out += "  \"warmup\": " + std::to_string(options.effective_warmup()) + ",\n";
  out += "  \"cases\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const CaseResult& r = results[i];
    out += "    {\"name\": " + quoted(r.name) +
           ", \"description\": " + quoted(r.description) +
           ",\n     \"median_s\": " + num(r.median_s) +
           ", \"mad_s\": " + num(r.mad_s) + ", \"min_s\": " + num(r.min_s) +
           ",\n     \"reps_s\": [";
    for (std::size_t k = 0; k < r.seconds.size(); ++k) {
      if (k) out += ", ";
      out += num(r.seconds[k]);
    }
    out += "],\n     \"counters\": {";
    for (std::size_t k = 0; k < r.counters.size(); ++k) {
      if (k) out += ", ";
      out += quoted(r.counters[k].first) + ": " + num(r.counters[k].second);
    }
    out += "}}";
    out += (i + 1 < results.size()) ? ",\n" : "\n";
  }
  out += "  ],\n";

  // Derived ratios (schema v2): speedup_<stem> relates every
  // X_surrogate / X_exact pair (exact over surrogate median wall time);
  // overhead_<stem> relates every X_disabled / X_enabled pair (enabled
  // over disabled — the focv::obs telemetry tax, 1.0 = free).
  out += "  \"derived\": {";
  bool first = true;
  auto pair_ratio = [&](const char* base_suffix, const char* other_suffix,
                        const char* key_prefix, bool invert) {
    const std::string suffix = base_suffix;
    for (const CaseResult& base : results) {
      if (base.name.size() <= suffix.size() ||
          base.name.compare(base.name.size() - suffix.size(), suffix.size(), suffix) !=
              0) {
        continue;
      }
      const std::string stem = base.name.substr(0, base.name.size() - suffix.size());
      for (const CaseResult& other : results) {
        if (other.name == stem + other_suffix && base.median_s > 0.0 &&
            other.median_s > 0.0) {
          if (!first) out += ", ";
          first = false;
          const double ratio = invert ? base.median_s / other.median_s
                                      : other.median_s / base.median_s;
          std::string stem_clean = stem;
          while (!stem_clean.empty() && stem_clean.back() == '_') stem_clean.pop_back();
          out += quoted(std::string(key_prefix) + stem_clean) + ": " + num(ratio);
        }
      }
    }
  };
  pair_ratio("_surrogate", "_exact", "speedup_", /*invert=*/false);
  pair_ratio("_disabled", "_enabled", "overhead_", /*invert=*/false);
  // speedup_fleet_soa: per-node event-stepper wall time over the SoA
  // engine on the identical roster (fleet_soa_ref_event / fleet_soa_float).
  pair_ratio("_ref_event", "_float", "speedup_", /*invert=*/true);
  // speedup_fleet_simd: the SoA scalar kernel's wall time over the
  // interval-major lane kernel on the identical roster
  // (fleet_soa_float / fleet_soa_simd_float). The CI smoke gate holds
  // this ratio.
  for (const CaseResult& base : results) {
    if (base.name != "fleet_soa_float") continue;
    for (const CaseResult& simd : results) {
      if (simd.name == "fleet_soa_simd_float" && base.median_s > 0.0 &&
          simd.median_s > 0.0) {
        if (!first) out += ", ";
        first = false;
        out += quoted("speedup_fleet_simd") + ": " + num(base.median_s / simd.median_s);
      }
    }
  }
  // speedup_event_stepper_<stem>: fixed-stepper wall time over the
  // event-driven stepper for the same workload. The fixed counterpart
  // of X_event is X_surrogate when it exists (the simulate_node cases)
  // and plain X otherwise (fleet_step).
  for (const CaseResult& ev : results) {
    const std::string ev_suffix = "_event";
    if (ev.name.size() <= ev_suffix.size() ||
        ev.name.compare(ev.name.size() - ev_suffix.size(), ev_suffix.size(),
                        ev_suffix) != 0) {
      continue;
    }
    const std::string stem = ev.name.substr(0, ev.name.size() - ev_suffix.size());
    for (const CaseResult& base : results) {
      if ((base.name == stem + "_surrogate" || base.name == stem) &&
          base.median_s > 0.0 && ev.median_s > 0.0) {
        if (!first) out += ", ";
        first = false;
        out += quoted("speedup_event_stepper_" + stem) + ": " +
               num(base.median_s / ev.median_s);
      }
    }
  }
  out += "}\n}\n";
  return out;
}

int main_with_args(const std::vector<std::string>& args) {
  RunOptions opt;
  auto value_of = [](const std::string& arg, const char* flag,
                     std::string* out) {
    const std::string prefix = std::string(flag) + "=";
    if (arg.compare(0, prefix.size(), prefix) == 0) {
      *out = arg.substr(prefix.size());
      return true;
    }
    return false;
  };
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    std::string v;
    if (a == "--smoke") {
      opt.smoke = true;
    } else if (value_of(a, "--repetitions", &v)) {
      opt.repetitions = std::stoi(v);
    } else if (value_of(a, "--warmup", &v)) {
      opt.warmup = std::stoi(v);
    } else if (value_of(a, "--filter", &v)) {
      opt.filter = v;
    } else if (value_of(a, "--output", &v)) {
      opt.output_path = v;
    } else if (a == "--help") {
      std::printf(
          "micro_bench [--smoke] [--repetitions=K] [--warmup=K]\n"
          "            [--filter=SUBSTR] [--output=PATH]\n");
      return 0;
    } else {
      std::fprintf(stderr, "micro_bench: unknown flag '%s'\n", a.c_str());
      return 2;
    }
  }

  if (registry().empty()) register_default_cases();
  const std::vector<CaseResult> results = run_cases(opt);

  std::printf("%-36s %12s %10s %10s\n", "case", "median [ms]", "mad [ms]", "min [ms]");
  for (const CaseResult& r : results) {
    std::printf("%-36s %12.3f %10.3f %10.3f\n", r.name.c_str(), r.median_s * 1e3,
                r.mad_s * 1e3, r.min_s * 1e3);
  }

  const std::string json = to_json(results, opt);
  if (!opt.output_path.empty()) {
    std::ofstream f(opt.output_path, std::ios::binary);
    if (!f) {
      std::fprintf(stderr, "micro_bench: cannot write '%s'\n", opt.output_path.c_str());
      return 1;
    }
    f << json;
    std::printf("wrote %s\n", opt.output_path.c_str());
  }
  return results.empty() ? 1 : 0;
}

}  // namespace focv::microbench
