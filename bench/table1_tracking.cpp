// Table I: test of tracking accuracy. Intensity, Voc, HELD_SAMPLE and
// the effective k (= 2 * HELD / Voc, since alpha = 1/2), which the paper
// measured between 59.2% and 60.1% across 200..5000 lux.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "circuit/transient.hpp"
#include "common/table.hpp"
#include "core/focv_system.hpp"
#include "core/netlists.hpp"
#include "mppt/focv_sample_hold.hpp"
#include "pv/calibration.hpp"
#include "pv/cell_library.hpp"

namespace {

using namespace focv;

struct PaperRow {
  double lux, voc, held, k_pct;
};

// Table I of the paper (mean of three runs per intensity).
const PaperRow kPaperTable1[] = {
    {200, 4.978, 1.483, 59.6},  {300, 5.096, 1.513, 59.4},  {400, 5.180, 1.542, 59.5},
    {500, 5.242, 1.554, 59.3},  {600, 5.292, 1.566, 59.2},  {700, 5.333, 1.580, 59.2},
    {800, 5.369, 1.596, 59.5},  {900, 5.410, 1.609, 59.5},  {1000, 5.440, 1.624, 59.7},
    {2000, 5.640, 1.674, 59.4}, {3000, 5.750, 1.691, 59.8}, {5000, 5.910, 1.775, 60.1},
};

double behavioural_held(double voc) {
  auto ctl = core::make_paper_controller();
  mppt::SensedInputs s;
  s.time = 0.0;
  s.dt = 1.0;
  s.voc = voc;
  (void)ctl.step(s);
  return ctl.held_sample(1.0);
}

double netlist_held(double lux) {
  circuit::Circuit ckt;
  pv::Conditions c;
  c.illuminance_lux = lux;
  core::build_fig3_system(ckt, pv::sanyo_am1815(), c, core::SystemSpec{});
  circuit::TransientOptions opt;
  opt.t_stop = 20.0;
  opt.start_from_dc = false;
  opt.dt_initial = 1e-6;
  opt.dt_max = 0.25;
  opt.dv_step_max = 0.4;
  const circuit::Trace tr = circuit::transient_analyze(ckt, opt);
  return tr.at("sys_sh_held", 19.0);
}

void reproduce_table1() {
  bench::print_header("Table I -- test of tracking accuracy",
                      "effective k between 59.2% and 60.1% across 200..5000 lux");

  pv::Conditions c;
  ConsoleTable table({"lux", "Voc paper [V]", "Voc model [V]", "HELD paper [V]",
                      "HELD model [V]", "k paper [%]", "k model [%]"});
  double k_min = 1e9, k_max = -1e9;
  for (const PaperRow& row : kPaperTable1) {
    c.illuminance_lux = row.lux;
    const double voc = pv::sanyo_am1815().open_circuit_voltage(c);
    const double held = behavioural_held(voc);
    const double k_pct = 2.0 * held / voc * 100.0;
    k_min = std::min(k_min, k_pct);
    k_max = std::max(k_max, k_pct);
    table.add_row({ConsoleTable::num(row.lux, 0), ConsoleTable::num(row.voc, 3),
                   ConsoleTable::num(voc, 3), ConsoleTable::num(row.held, 3),
                   ConsoleTable::num(held, 3), ConsoleTable::num(row.k_pct, 1),
                   ConsoleTable::num(k_pct, 1)});
  }
  table.print(std::cout);
  std::printf("k range: paper 59.2%%..60.1%%, model %.1f%%..%.1f%%\n", k_min, k_max);

  bench::print_note(
      "As in the prototype, the divider ratio is a trimmable design value (R2 pot); "
      "the reproduction keeps the nominal 0.298 setting. The constancy of k across "
      "the whole illuminance range is the claim under test.");

  // Circuit-level spot checks (full MNA transient per intensity).
  ConsoleTable spot({"lux", "HELD netlist [V]", "HELD behavioural [V]", "k netlist [%]"});
  for (const double lux : {200.0, 1000.0, 5000.0}) {
    c.illuminance_lux = lux;
    const double voc = pv::sanyo_am1815().open_circuit_voltage(c);
    const double hn = netlist_held(lux);
    spot.add_row({ConsoleTable::num(lux, 0), ConsoleTable::num(hn, 3),
                  ConsoleTable::num(behavioural_held(voc), 3),
                  ConsoleTable::num(2.0 * hn / voc * 100.0, 1)});
  }
  spot.print(std::cout);

  // The reason this matters: operating at k*Voc loses almost nothing.
  ConsoleTable eff({"lux", "tracking efficiency at 0.596*Voc [%]"});
  for (const double lux : {200.0, 1000.0, 5000.0}) {
    c.illuminance_lux = lux;
    const double voc = pv::sanyo_am1815().open_circuit_voltage(c);
    eff.add_row({ConsoleTable::num(lux, 0),
                 ConsoleTable::num(
                     pv::sanyo_am1815().tracking_efficiency(0.596 * voc, c) * 100.0, 2)});
  }
  eff.print(std::cout);
}

void bm_behavioural_sample(benchmark::State& state) {
  auto ctl = core::make_paper_controller();
  mppt::SensedInputs s;
  s.dt = 1.0;
  s.voc = 5.44;
  double t = 0.0;
  for (auto _ : state) {
    s.time = t;
    t += 70.0;  // one astable period per step
    benchmark::DoNotOptimize(ctl.step(s));
  }
}
BENCHMARK(bm_behavioural_sample);

void bm_netlist_table1_point(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(netlist_held(1000.0));
  }
}
BENCHMARK(bm_netlist_table1_point)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  reproduce_table1();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
