// Shared helpers for the reproduction benches.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

namespace focv::bench {

/// Parse and strip a `--jobs N` / `--jobs=N` flag from argv before the
/// remaining flags go to benchmark::Initialize. Returns `fallback`
/// (0 = one worker per hardware thread) when the flag is absent.
inline int parse_jobs_flag(int& argc, char** argv, int fallback = 0) {
  int jobs = fallback;
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
      jobs = std::atoi(argv[++i]);
    } else if (std::strncmp(argv[i], "--jobs=", 7) == 0) {
      jobs = std::atoi(argv[i] + 7);
    } else {
      argv[out++] = argv[i];
    }
  }
  argc = out;
  return jobs;
}

/// Banner printed before each reproduction block.
inline void print_header(const std::string& experiment, const std::string& paper_result) {
  std::printf("\n");
  std::printf("================================================================================\n");
  std::printf("REPRODUCTION  %s\n", experiment.c_str());
  std::printf("Paper result: %s\n", paper_result.c_str());
  std::printf("================================================================================\n");
}

inline void print_note(const std::string& note) { std::printf("NOTE: %s\n", note.c_str()); }

}  // namespace focv::bench
