// Shared helpers for the reproduction benches.
#pragma once

#include <cstdio>
#include <string>

namespace focv::bench {

/// Banner printed before each reproduction block.
inline void print_header(const std::string& experiment, const std::string& paper_result) {
  std::printf("\n");
  std::printf("================================================================================\n");
  std::printf("REPRODUCTION  %s\n", experiment.c_str());
  std::printf("Paper result: %s\n", paper_result.c_str());
  std::printf("================================================================================\n");
}

inline void print_note(const std::string& note) { std::printf("NOTE: %s\n", note.c_str()); }

}  // namespace focv::bench
