// Ablation: circuit non-idealities and model choices (DESIGN.md §5.2/5.4/5.5).
//  - hold-capacitor leakage (why the paper uses a low-leakage polyester cap),
//  - switch charge injection and buffer offsets,
//  - divider trim error (the R2 potentiometer),
//  - alpha representation divider,
//  - single-diode vs Merten/photo-shunt cell model calibration residual.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "common/table.hpp"
#include "core/focv_system.hpp"
#include "env/profiles.hpp"
#include "mppt/focv_sample_hold.hpp"
#include "node/harvester_node.hpp"
#include "pv/calibration.hpp"
#include "pv/cell_library.hpp"

namespace {

using namespace focv;

double day_tracking_eff(const core::SystemSpec& spec) {
  node::NodeConfig cfg;
  cfg.use_cell(pv::sanyo_am1815());
  cfg.use_controller(core::make_paper_controller(spec));
  cfg.storage.initial_voltage = 3.0;
  const env::LightTrace day = env::office_desk_mixed();
  return node::simulate_node(day, cfg).tracking_efficiency();
}

void ablate_sample_hold() {
  bench::print_header("Ablation -- sample-and-hold non-idealities",
                      "why a low-leakage cap, a trimmed divider and short acquisition "
                      "matter (Sections III-B / IV-A)");

  ConsoleTable table({"variant", "tracking eff (24 h office) [%]", "delta [pp]"});
  const double nominal = day_tracking_eff(core::SystemSpec{});
  auto add = [&](const std::string& name, const core::SystemSpec& spec) {
    const double eff = day_tracking_eff(spec);
    table.add_row({name, ConsoleTable::num(eff * 100.0, 2),
                   ConsoleTable::num((eff - nominal) * 100.0, 2)});
  };
  table.add_row({"nominal prototype", ConsoleTable::num(nominal * 100.0, 2), "0.00"});

  core::SystemSpec leaky;
  leaky.hold_leakage = 5e-9;  // ceramic-grade leakage: 100x the polyester cap
  add("leaky hold cap (5 nA vs 50 pA)", leaky);

  core::SystemSpec very_leaky;
  very_leaky.hold_leakage = 50e-9;
  add("very leaky hold cap (50 nA)", very_leaky);

  core::SystemSpec injected;
  injected.charge_injection = 100e-12;  // large unbuffered switch
  add("20x switch charge injection", injected);

  core::SystemSpec offset;
  offset.buffer_offset = 10e-3;  // cheap op-amps
  add("10 mV buffer offsets", offset);

  core::SystemSpec trim_low;
  trim_low.divider_ratio = 0.26;  // mis-trimmed pot: k ~ 0.52
  add("divider mis-trimmed low (k=0.52)", trim_low);

  core::SystemSpec trim_high;
  trim_high.divider_ratio = 0.37;  // k ~ 0.74
  add("divider mis-trimmed high (k=0.74)", trim_high);

  table.print(std::cout);
  bench::print_note(
      "Leakage on the hold node and trim error dominate; charge injection and mV-level "
      "offsets are second-order -- matching the paper's emphasis on the low-leakage "
      "polyester capacitor and the R2 trim pot.");
}

void ablate_alpha() {
  bench::print_header("Ablation -- the alpha = 1/2 representation divider (Eq. 3)",
                      "Voc up to 5.9 V must be represented under the 3.3 V rail");
  ConsoleTable table({"alpha", "HELD at 5000 lux [V]", "fits under 3.3 V rail?"});
  pv::Conditions c;
  c.illuminance_lux = 5000.0;
  const double voc = pv::sanyo_am1815().open_circuit_voltage(c);
  for (const double alpha : {1.0, 0.75, 0.5, 0.25}) {
    const double held = voc * 0.596 * alpha;
    table.add_row({ConsoleTable::num(alpha, 2), ConsoleTable::num(held, 3),
                   held < 3.0 ? "yes (with margin)" : "NO"});
  }
  table.print(std::cout);
  bench::print_note(
      "alpha = 1 would need the hold/buffer chain to carry 3.5 V+ signals on a 3.3 V "
      "rail; alpha = 1/2 keeps every analog node below ~1.8 V. Smaller alpha wastes "
      "resolution against the ACTIVE threshold.");
}

void ablate_cell_model() {
  bench::print_header("Ablation -- single-diode vs photo-shunt a-Si cell model",
                      "a constant-Rsh single-diode model cannot hit the paper's anchors "
                      "(DESIGN.md §5.2)");

  // Best-effort single-diode fit: same pipeline with the a-Si loss terms
  // forced to zero (constant shunt only).
  const auto anchors = pv::table1_voc_anchors();
  const pv::MppAnchor mpp = pv::am1815_mpp_anchor();

  const pv::MertenAsiModel::AsiParams full = pv::sanyo_am1815().asi_params();
  pv::MertenAsiModel::AsiParams plain = full;
  plain.recombination_chi = 0.0;
  plain.photo_shunt_per_volt = 0.0;
  // Give the plain model its best chance: re-balance the shunt to pull
  // the MPP down as far as a constant resistor can.
  ConsoleTable table({"model", "objective (weighted SSE)", "worst Voc err [mV]",
                      "Vmpp err [mV]"});
  auto eval = [&](const std::string& name, const pv::MertenAsiModel::AsiParams& p) {
    const double sse = pv::calibration_objective(p, anchors, mpp);
    const pv::MertenAsiModel model(p);
    double worst = 0.0;
    pv::Conditions c;
    for (const auto& a : anchors) {
      c.illuminance_lux = a.lux;
      worst = std::max(worst, std::abs(model.open_circuit_voltage(c) - a.voc));
    }
    c.illuminance_lux = mpp.lux;
    const double vmpp_err = std::abs(model.maximum_power_point(c).voltage - mpp.vmpp);
    table.add_row({name, ConsoleTable::num(sse, 0), ConsoleTable::num(worst * 1e3, 1),
                   ConsoleTable::num(vmpp_err * 1e3, 0)});
  };
  eval("calibrated photo-shunt model", full);
  eval("same params, losses removed", plain);
  for (const double rsh : {1e6, 300e3, 100e3}) {
    pv::MertenAsiModel::AsiParams p = plain;
    p.base.shunt_resistance = rsh;
    eval("single-diode, Rsh = " + ConsoleTable::num(rsh / 1e3, 0) + " kOhm", p);
  }
  table.print(std::cout);
  bench::print_note(
      "A constant shunt either barely moves the MPP (large Rsh) or collapses Voc at "
      "low lux (small Rsh): the photocurrent-proportional loss of the a-Si model is "
      "what lets one parameter set match the log-linear Voc column AND the 42 uA / "
      "~3 V MPP anchor simultaneously.");
}

void bm_ablation_day_run(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(day_tracking_eff(core::SystemSpec{}));
  }
}
BENCHMARK(bm_ablation_day_run)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  ablate_sample_hold();
  ablate_alpha();
  ablate_cell_model();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
