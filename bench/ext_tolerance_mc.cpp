// Extension bench: Monte-Carlo production spread of the metrology
// circuit — why the paper's R2 is a potentiometer, and how the 7.6 uA /
// 39 ms / 69 s figures vary with real component tolerances.
// The Monte-Carlo now runs through the focv_runtime work-stealing pool
// (`--jobs N`; the report is bit-identical for any N because every unit
// draws from its own splitmix-derived RNG stream).
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "common/table.hpp"
#include "core/tolerance.hpp"
#include "runtime/thread_pool.hpp"

namespace {

using namespace focv;

int g_jobs = 0;  // --jobs N (0 = hardware concurrency)

void print_stats_row(ConsoleTable& table, const std::string& name,
                     const core::ToleranceReport::Stats& s, double scale,
                     const std::string& unit) {
  table.add_row({name, ConsoleTable::num(s.mean * scale, 3) + unit,
                 ConsoleTable::num(s.stddev * scale, 3) + unit,
                 ConsoleTable::num(s.min * scale, 3) + unit,
                 ConsoleTable::num(s.max * scale, 3) + unit});
}

void reproduce_tolerance_mc() {
  bench::print_header(
      "Extension -- Monte-Carlo component tolerances (2000 production units)",
      "Section IV-A: the k setting 'may easily be trimmed by means of a variable "
      "potentiometer in place of R2'");

  core::ToleranceSpec untrimmed;
  const auto report =
      core::run_tolerance_monte_carlo(core::SystemSpec{}, untrimmed, 2000, 2024, g_jobs);

  ConsoleTable table({"quantity (untrimmed units)", "mean", "stddev", "min", "max"});
  print_stats_row(table, "effective k", report.k_stats(), 100.0, " %");
  print_stats_row(table, "astable on period", report.on_period_stats(), 1e3, " ms");
  print_stats_row(table, "astable off period", report.off_period_stats(), 1.0, " s");
  print_stats_row(table, "metrology current", report.current_stats(), 1e6, " uA");
  table.print(std::cout);

  core::ToleranceSpec trimmed = untrimmed;
  trimmed.trimmed = true;
  const auto trimmed_report =
      core::run_tolerance_monte_carlo(core::SystemSpec{}, trimmed, 2000, 2024, g_jobs);

  ConsoleTable yield({"k window", "yield untrimmed", "yield after R2 trim"});
  for (const auto& [lo, hi] : {std::pair{0.592, 0.601}, std::pair{0.58, 0.61},
                               std::pair{0.55, 0.65}}) {
    yield.add_row({ConsoleTable::num(lo * 100, 1) + "-" + ConsoleTable::num(hi * 100, 1) + " %",
                   ConsoleTable::num(report.k_yield(lo, hi) * 100.0, 1) + " %",
                   ConsoleTable::num(trimmed_report.k_yield(lo, hi) * 100.0, 1) + " %"});
  }
  yield.print(std::cout);

  bench::print_note(
      "With 1% resistors the untrimmed divider already scatters k beyond the paper's "
      "measured 59.2-60.1% band; the trim step recovers it. Timing spread is dominated "
      "by the 10% timing capacitor -- harmless, since Section II-B shows any hold "
      "period above ~60 s works.");
}

/// Serial baseline (jobs=1, the seed path) vs the work-stealing pool:
/// the wall-clock speedup of the ported Monte-Carlo, verified
/// bit-identical first.
void measure_parallel_speedup() {
  const int units = 20000;
  const int jobs = g_jobs > 0 ? g_jobs : runtime::ThreadPool::default_thread_count();

  const auto timed = [&](int j) {
    const auto start = std::chrono::steady_clock::now();
    const auto report =
        core::run_tolerance_monte_carlo(core::SystemSpec{}, core::ToleranceSpec{}, units,
                                        2024, j);
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
    return std::pair{seconds, report.k_stats().mean};
  };
  const auto [serial_s, serial_mean] = timed(1);
  const auto [parallel_s, parallel_mean] = timed(jobs);

  std::printf("\nparallel runtime: %d units, serial %.3f s vs %d-thread %.3f s "
              "-> %.2fx speedup (results %s)\n",
              units, serial_s, jobs, parallel_s, serial_s / parallel_s,
              serial_mean == parallel_mean ? "bit-identical" : "MISMATCH");
}

void bm_tolerance_mc(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::run_tolerance_monte_carlo(
        core::SystemSpec{}, core::ToleranceSpec{}, static_cast<int>(state.range(0))));
  }
}
BENCHMARK(bm_tolerance_mc)->Arg(100)->Arg(1000)->Unit(benchmark::kMillisecond);

void bm_tolerance_mc_parallel(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::run_tolerance_monte_carlo(core::SystemSpec{}, core::ToleranceSpec{},
                                        static_cast<int>(state.range(0)), 2024, 0));
  }
}
BENCHMARK(bm_tolerance_mc_parallel)->Arg(1000)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  g_jobs = focv::bench::parse_jobs_flag(argc, argv);
  reproduce_tolerance_mc();
  measure_parallel_speedup();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
