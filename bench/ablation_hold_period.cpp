// Ablation: the hold-period design choice (DESIGN.md §5.3).
// The paper's core power trick is sampling for 39 ms every 69 s instead
// of continuously (pilot cell [5]) or every 100 ms [4]. This bench sweeps
// the hold period and shows the trade: sampling cost and disconnection
// loss fall dramatically with the period, while the Eq. (2) staleness
// error stays harmless well past 60 s.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <iostream>

#include "analysis/sampling_error.hpp"
#include "bench_common.hpp"
#include "common/table.hpp"
#include "core/focv_system.hpp"
#include "env/profiles.hpp"
#include "mppt/focv_sample_hold.hpp"
#include "node/harvester_node.hpp"
#include "pv/cell_library.hpp"
#include "runtime/sweep.hpp"

namespace {

using namespace focv;

int g_jobs = 0;  // --jobs N (0 = hardware concurrency)

void reproduce_hold_period_ablation() {
  bench::print_header("Ablation -- hold period of the sample-and-hold",
                      "a >60 s hold costs <1% staleness while slashing sampling power "
                      "(Section II-B's design conclusion)");

  const auto& cell = pv::schott_asi_1116929();
  const env::LightTrace desk = env::desk_sunday_blinds_closed();
  const env::LightTrace mobile = env::semi_mobile_day();
  const auto voc_desk = desk.voc_series(cell, 300.15);
  const auto voc_mobile = mobile.voc_series(cell, 300.15);

  pv::Conditions c;
  c.illuminance_lux = 1000.0;
  const double k = cell.k_factor(c);

  ConsoleTable table({"hold period", "E mobile [mV]", "staleness loss [%]",
                      "disconnect loss [%]", "divider duty [%]", "total penalty [%]"});
  for (const double period : {0.1, 1.0, 10.0, 60.0, 69.0, 300.0, 1800.0}) {
    const std::size_t samples =
        std::max<std::size_t>(1, static_cast<std::size_t>(period));
    const double e = analysis::worst_case_mean_error(voc_mobile, samples);
    const double staleness =
        analysis::efficiency_loss_at_offset(cell, c, analysis::mpp_voltage_error(e, k));
    const double t_on = 0.039;
    const double disconnect = t_on / (t_on + period);
    const double duty = disconnect;  // divider conducts while sampling
    table.add_row({ConsoleTable::num(period, 1) + " s", ConsoleTable::num(e * 1e3, 1),
                   ConsoleTable::num(staleness * 100.0, 3),
                   ConsoleTable::num(disconnect * 100.0, 3),
                   ConsoleTable::num(duty * 100.0, 3),
                   ConsoleTable::num((staleness + disconnect) * 100.0, 3)});
  }
  table.print(std::cout);
  bench::print_note(
      "Below ~1 s the disconnection loss dominates (the [4] regime); beyond ~10 min "
      "staleness starts to matter on mobile traces. The paper's 69 s sits on the flat "
      "floor of the total-penalty curve.");

  // End-to-end check: the full node across the semi-mobile day with
  // different astable periods, fanned out through the sweep engine (one
  // hold-period variant per controller-axis entry).
  runtime::SweepSpec sweep;
  sweep.add_cell("AM-1815", pv::sanyo_am1815());
  for (const double period : {1.0, 69.0, 600.0}) {
    core::SystemSpec spec;
    spec.astable_off_period = period;
    sweep.add_controller(ConsoleTable::num(period, 0) + " s",
                         std::make_unique<mppt::FocvSampleHoldController>(
                             core::make_paper_controller(spec)));
  }
  sweep.add_scenario("semi-mobile day", env::semi_mobile_day());
  sweep.base.storage.initial_voltage = 3.0;
  runtime::SweepOptions options;
  options.jobs = g_jobs;
  const runtime::SweepResult swept = runtime::run_sweep(sweep, options);

  ConsoleTable node_table({"hold period", "net energy [J]", "tracking eff [%]"});
  for (std::size_t i = 0; i < sweep.controllers.size(); ++i) {
    const node::NodeReport& r = swept.at(0, i, 0).report;
    node_table.add_row({sweep.controllers[i].name, ConsoleTable::num(r.net_energy(), 3),
                        ConsoleTable::num(r.tracking_efficiency() * 100.0, 2)});
  }
  node_table.print(std::cout);

  // Staleness on the quiet desk trace for reference.
  const double e_desk60 = analysis::worst_case_mean_error(voc_desk, 60);
  std::printf("desk trace at 60 s: E = %.1f mV -> loss %.3f%% (paper: 12.7 mV, <1%%)\n",
              e_desk60 * 1e3,
              analysis::efficiency_loss_at_offset(cell, c,
                                                  analysis::mpp_voltage_error(e_desk60, k)) *
                  100.0);
}

void bm_hold_period_sweep(benchmark::State& state) {
  const env::LightTrace mobile = env::semi_mobile_day();
  const auto voc = mobile.voc_series(pv::schott_asi_1116929(), 300.15);
  for (auto _ : state) {
    benchmark::DoNotOptimize(analysis::error_vs_period(voc, 1.0, {1, 10, 60, 300, 1800}));
  }
}
BENCHMARK(bm_hold_period_sweep);

}  // namespace

int main(int argc, char** argv) {
  g_jobs = focv::bench::parse_jobs_flag(argc, argv);
  reproduce_hold_period_ablation();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
