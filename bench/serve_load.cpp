// focv-serve load generator: drives a daemon with C connections × K
// pipelined in-flight requests each and reports latency percentiles and
// sustained throughput.
//
//   serve_load [--port N]          attach to a running daemon
//              [--connections C]   default 64
//              [--inflight K]      default 160   (C*K = concurrent load)
//              [--duration S]      default 10
//              [--distinct D]      default 1 distinct request keys
//              [--deadline-ms X]   per-request deadline
//              [--op sizing|sim|burn]
//              [--env NAME] [--jobs N] [--queue-depth N]
//              [--json PATH] [--smoke]
//
// Without --port it self-hosts an in-process server (ephemeral port) so
// CI can run it as one command. The default workload is the warm-path
// contract the serving tier is built around: identical sizing queries
// answered from the response cache at socket round-trip latency. With
// --distinct D the load cycles over D distinct sizing keys
// (report_period_s = 60 + i), exercising compute, batching and
// single-flight coalescing instead of the cache.
//
// Output: a human summary plus optional focv-serve-load/v1 JSON:
//   {"schema":"focv-serve-load/v1","connections":64,...,
//    "qps":...,"p50_ms":...,"p99_ms":...,
//    "errors":{"overloaded":0,"deadline_exceeded":0,"other":0}}
//
// --smoke shrinks to 8×16 for ~2 s and exits non-zero when any
// response failed — the CI smoke gate.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "serve/client.hpp"
#include "serve/json.hpp"
#include "serve/server.hpp"

namespace {

using Clock = std::chrono::steady_clock;
using focv::serve::Json;

struct LoadOptions {
  int port = 0;  // 0 = self-host
  int connections = 64;
  int inflight = 160;
  double duration_s = 10.0;
  int distinct = 1;
  double deadline_ms = 0.0;
  std::string op = "sizing";
  std::string env = "office";
  int jobs = 0;          // self-hosted server workers
  long queue_depth = -1; // self-hosted server queue bound (-1 = default)
  std::string json_path;
  bool smoke = false;
};

struct WorkerTally {
  std::vector<double> latencies_ms;
  std::uint64_t ok = 0;
  std::uint64_t overloaded = 0;
  std::uint64_t deadline_exceeded = 0;
  std::uint64_t other_errors = 0;
  bool transport_failed = false;
};

std::string request_json(const LoadOptions& options, int key_index, std::uint64_t id) {
  Json body = Json::object();
  body.set("op", Json::string(options.op));
  body.set("id", Json::number(static_cast<double>(id)));
  if (options.op == "burn") {
    body.set("ms", Json::number(1.0));
  } else {
    body.set("env", Json::string(options.env));
    if (options.op == "sizing") {
      body.set("report_period_s", Json::number(60.0 + key_index));
    }
  }
  if (options.deadline_ms > 0.0) body.set("deadline_ms", Json::number(options.deadline_ms));
  return body.dump();
}

/// One connection's sliding-window loop: keep `inflight` requests on
/// the wire until the deadline, then drain.
void worker_loop(const LoadOptions& options, std::uint16_t port, Clock::time_point until,
                 WorkerTally& tally) {
  focv::serve::Client client;
  std::string error;
  if (!client.connect(port, error)) {
    tally.transport_failed = true;
    return;
  }
  // id -> send timestamp of the in-flight window (ids recycle mod 2K).
  const std::uint64_t window = static_cast<std::uint64_t>(options.inflight) * 2;
  std::vector<Clock::time_point> sent_at(window);
  std::uint64_t next_id = 0;
  std::uint64_t outstanding = 0;

  const auto fire = [&] {
    const std::uint64_t id = next_id++;
    sent_at[id % window] = Clock::now();
    if (!client.send(request_json(options, static_cast<int>(id) % options.distinct, id))) {
      tally.transport_failed = true;
      return false;
    }
    ++outstanding;
    return true;
  };

  for (int i = 0; i < options.inflight; ++i) {
    if (!fire()) return;
  }
  std::string payload;
  Json response;
  bool sending = true;
  while (outstanding > 0) {
    if (!client.recv(payload)) {
      tally.transport_failed = true;
      return;
    }
    --outstanding;
    const Clock::time_point now = Clock::now();
    if (Json::parse(payload, response)) {
      const Json* id = response.find("id");
      if (id != nullptr && id->is_number()) {
        const std::uint64_t got = static_cast<std::uint64_t>(id->as_number());
        tally.latencies_ms.push_back(
            std::chrono::duration<double, std::milli>(now - sent_at[got % window]).count());
      }
      if (response.bool_or("ok", false)) {
        ++tally.ok;
      } else {
        const Json* err = response.find("error");
        const std::string code = err != nullptr ? err->string_or("code", "") : "";
        if (code == "overloaded") {
          ++tally.overloaded;
        } else if (code == "deadline_exceeded") {
          ++tally.deadline_exceeded;
        } else {
          ++tally.other_errors;
        }
      }
    } else {
      ++tally.other_errors;
    }
    if (sending && now >= until) sending = false;
    if (sending && !fire()) return;
  }
}

double percentile(std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const std::size_t idx = static_cast<std::size_t>(p * static_cast<double>(sorted.size() - 1));
  return sorted[idx];
}

}  // namespace

int main(int argc, char** argv) {
  LoadOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "serve_load: %s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--port") options.port = std::atoi(value());
    else if (arg == "--connections") options.connections = std::atoi(value());
    else if (arg == "--inflight") options.inflight = std::atoi(value());
    else if (arg == "--duration") options.duration_s = std::atof(value());
    else if (arg == "--distinct") options.distinct = std::max(1, std::atoi(value()));
    else if (arg == "--deadline-ms") options.deadline_ms = std::atof(value());
    else if (arg == "--op") options.op = value();
    else if (arg == "--env") options.env = value();
    else if (arg == "--jobs") options.jobs = std::atoi(value());
    else if (arg == "--queue-depth") options.queue_depth = std::atol(value());
    else if (arg == "--json") options.json_path = value();
    else if (arg == "--smoke") options.smoke = true;
    else {
      std::fprintf(stderr, "serve_load: unknown flag %s (see file header)\n", arg.c_str());
      return 2;
    }
  }
  if (options.smoke) {
    options.connections = std::min(options.connections, 8);
    options.inflight = std::min(options.inflight, 16);
    options.duration_s = std::min(options.duration_s, 2.0);
  }

  // Self-host when no daemon was given: same server class, in-process.
  std::unique_ptr<focv::serve::Server> server;
  std::uint16_t port = static_cast<std::uint16_t>(options.port);
  if (options.port == 0) {
    focv::serve::ServerOptions server_options;
    server_options.jobs = options.jobs;
    if (options.queue_depth >= 0) {
      server_options.queue_depth = static_cast<std::size_t>(options.queue_depth);
    }
    server_options.session.enable_test_ops = true;
    server = std::make_unique<focv::serve::Server>(server_options);
    std::string error;
    if (!server->start(error)) {
      std::fprintf(stderr, "serve_load: %s\n", error.c_str());
      return 1;
    }
    port = server->port();
  }

  // Warm every distinct key once so the measured run probes the serving
  // path (cache + socket), not the first-touch environment build.
  {
    focv::serve::Client client;
    std::string error;
    if (!client.connect(port, error)) {
      std::fprintf(stderr, "serve_load: %s\n", error.c_str());
      return 1;
    }
    std::string response;
    for (int k = 0; k < options.distinct; ++k) {
      LoadOptions warm = options;
      warm.deadline_ms = 0.0;
      if (!client.request(request_json(warm, k, 0), response)) {
        std::fprintf(stderr, "serve_load: warm-up request failed\n");
        return 1;
      }
    }
  }

  const int total_inflight = options.connections * options.inflight;
  std::printf("serve_load: %d connections x %d in-flight = %d concurrent, %.1f s, op=%s%s\n",
              options.connections, options.inflight, total_inflight, options.duration_s,
              options.op.c_str(), options.port == 0 ? " (self-hosted)" : "");
  std::fflush(stdout);

  std::vector<WorkerTally> tallies(static_cast<std::size_t>(options.connections));
  std::vector<std::thread> threads;
  const Clock::time_point start = Clock::now();
  const Clock::time_point until =
      start + std::chrono::duration_cast<Clock::duration>(
                  std::chrono::duration<double>(options.duration_s));
  for (int c = 0; c < options.connections; ++c) {
    threads.emplace_back(worker_loop, std::cref(options), port, until,
                         std::ref(tallies[static_cast<std::size_t>(c)]));
  }
  for (std::thread& t : threads) t.join();
  const double elapsed_s = std::chrono::duration<double>(Clock::now() - start).count();

  WorkerTally total;
  bool transport_failed = false;
  for (WorkerTally& tally : tallies) {
    total.ok += tally.ok;
    total.overloaded += tally.overloaded;
    total.deadline_exceeded += tally.deadline_exceeded;
    total.other_errors += tally.other_errors;
    transport_failed = transport_failed || tally.transport_failed;
    total.latencies_ms.insert(total.latencies_ms.end(), tally.latencies_ms.begin(),
                              tally.latencies_ms.end());
  }
  std::sort(total.latencies_ms.begin(), total.latencies_ms.end());
  const std::uint64_t responses =
      total.ok + total.overloaded + total.deadline_exceeded + total.other_errors;
  const double qps = elapsed_s > 0.0 ? static_cast<double>(responses) / elapsed_s : 0.0;
  const double p50 = percentile(total.latencies_ms, 0.50);
  const double p99 = percentile(total.latencies_ms, 0.99);

  std::printf("  responses %llu in %.2f s -> %.0f qps\n",
              static_cast<unsigned long long>(responses), elapsed_s, qps);
  std::printf("  latency p50 %.3f ms, p99 %.3f ms\n", p50, p99);
  std::printf("  ok %llu, overloaded %llu, deadline_exceeded %llu, other %llu%s\n",
              static_cast<unsigned long long>(total.ok),
              static_cast<unsigned long long>(total.overloaded),
              static_cast<unsigned long long>(total.deadline_exceeded),
              static_cast<unsigned long long>(total.other_errors),
              transport_failed ? " [TRANSPORT FAILURE]" : "");

  if (!options.json_path.empty()) {
    Json errors = Json::object();
    errors.set("overloaded", Json::number(static_cast<double>(total.overloaded)));
    errors.set("deadline_exceeded", Json::number(static_cast<double>(total.deadline_exceeded)));
    errors.set("other", Json::number(static_cast<double>(total.other_errors)));
    Json out = Json::object();
    out.set("schema", Json::string("focv-serve-load/v1"));
    out.set("op", Json::string(options.op));
    out.set("connections", Json::number(options.connections));
    out.set("inflight_per_connection", Json::number(options.inflight));
    out.set("concurrent_inflight", Json::number(total_inflight));
    out.set("distinct_keys", Json::number(options.distinct));
    out.set("duration_s", Json::number(elapsed_s));
    out.set("responses", Json::number(static_cast<double>(responses)));
    out.set("qps", Json::number(qps));
    out.set("p50_ms", Json::number(p50));
    out.set("p99_ms", Json::number(p99));
    out.set("errors", std::move(errors));
    std::ofstream file(options.json_path);
    file << out.dump() << "\n";
    std::printf("  wrote %s\n", options.json_path.c_str());
  }

  if (server != nullptr) server->stop();
  // Smoke mode is a pass/fail gate: every response must be an ok.
  if (options.smoke && (transport_failed || responses == 0 || total.ok != responses)) {
    std::fprintf(stderr, "serve_load: smoke gate FAILED\n");
    return 1;
  }
  return transport_failed ? 1 : 0;
}
