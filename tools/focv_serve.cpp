// focv-serve daemon: long-lived simulation query server on 127.0.0.1.
//
//   focv_serve [--port N] [--jobs N] [--queue-depth N] [--deadline-ms X]
//              [--max-batch N] [--no-batching] [--fleet-jobs N]
//              [--enable-test-ops] [--allow-shutdown-op]
//              [--trace/--metrics/--snapshot/--flight PATH]
//
// Prints one parseable line when ready:
//   focv-serve listening on 127.0.0.1:<port>
//
// SIGINT/SIGTERM shut down gracefully: stop accepting, drain the
// admission queue and in-flight work, flush telemetry artifacts. With
// --snapshot PATH the server also rewrites the focv-obs-snapshot/v1
// JSON (and PATH.prom) about once a second while serving, so a poller
// (or tools/obs_report) can watch a live daemon.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "obs/cli.hpp"
#include "obs/obs.hpp"
#include "serve/server.hpp"

namespace {

volatile std::sig_atomic_t g_signal = 0;

void handle_signal(int sig) { g_signal = sig; }

[[noreturn]] void usage(const char* argv0, int code) {
  std::fprintf(code == 0 ? stdout : stderr,
               "usage: %s [--port N] [--jobs N] [--queue-depth N] [--deadline-ms X]\n"
               "          [--max-batch N] [--no-batching] [--fleet-jobs N]\n"
               "          [--max-fleet-nodes N] [--enable-test-ops] [--allow-shutdown-op]\n"
               "          %s\n",
               argv0, focv::obs::CliTelemetry::usage());
  std::exit(code);
}

const char* flag_value(int argc, char** argv, int& i) {
  if (i + 1 >= argc) {
    std::fprintf(stderr, "focv_serve: %s needs a value\n", argv[i]);
    std::exit(2);
  }
  return argv[++i];
}

}  // namespace

int main(int argc, char** argv) {
  focv::serve::ServerOptions options;
  focv::obs::CliTelemetry telemetry;

  for (int i = 1; i < argc; ++i) {
    if (telemetry.consume(argc, argv, i)) continue;
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") usage(argv[0], 0);
    if (arg == "--port") {
      options.port = static_cast<std::uint16_t>(std::atoi(flag_value(argc, argv, i)));
    } else if (arg == "--jobs") {
      options.jobs = std::atoi(flag_value(argc, argv, i));
    } else if (arg == "--queue-depth") {
      options.queue_depth = static_cast<std::size_t>(std::atol(flag_value(argc, argv, i)));
    } else if (arg == "--deadline-ms") {
      options.default_deadline_ms = std::atof(flag_value(argc, argv, i));
    } else if (arg == "--max-batch") {
      options.max_batch = static_cast<std::size_t>(std::atol(flag_value(argc, argv, i)));
    } else if (arg == "--no-batching") {
      options.batching = false;
    } else if (arg == "--fleet-jobs") {
      options.session.fleet_jobs = std::atoi(flag_value(argc, argv, i));
    } else if (arg == "--max-fleet-nodes") {
      options.session.max_fleet_nodes =
          static_cast<std::size_t>(std::atol(flag_value(argc, argv, i)));
    } else if (arg == "--enable-test-ops") {
      options.session.enable_test_ops = true;
    } else if (arg == "--allow-shutdown-op") {
      options.allow_shutdown_op = true;
    } else {
      std::fprintf(stderr, "focv_serve: unknown flag %s\n", argv[i]);
      usage(argv[0], 2);
    }
  }

  telemetry.begin();
  // Live snapshot publishing piggybacks on the --snapshot artifact path
  // (the final write at exit still comes from telemetry.finish()).
  options.snapshot_path = telemetry.snapshot_path;

  focv::serve::Server server(options);
  std::string error;
  if (!server.start(error)) {
    std::fprintf(stderr, "focv_serve: %s\n", error.c_str());
    return 1;
  }
  std::signal(SIGINT, handle_signal);
  std::signal(SIGTERM, handle_signal);

  std::printf("focv-serve listening on 127.0.0.1:%u\n", server.port());
  std::printf("  jobs=%d queue_depth=%zu deadline_ms=%g batching=%s\n",
              options.jobs, options.queue_depth, options.default_deadline_ms,
              options.batching ? "on" : "off");
  std::fflush(stdout);

  while (g_signal == 0 && !server.stop_requested()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  std::printf("focv-serve: draining (%s)...\n",
              g_signal != 0 ? (g_signal == SIGINT ? "SIGINT" : "SIGTERM") : "shutdown op");
  std::fflush(stdout);
  server.stop();
  telemetry.finish();
  std::printf("focv-serve: stopped\n");
  return 0;
}
