#include <cstdio>
#include "pv/calibration.hpp"
int main() {
  using namespace focv::pv;
  const CalibrationReport r = calibrate_am1815();
  std::printf("objective      %.6g\n", r.objective);
  std::printf("iterations     %d\n", r.iterations);
  std::printf("max_voc_error  %.4g mV\n", r.max_voc_error * 1e3);
  std::printf("vmpp_error     %.4g mV\n", r.vmpp_error * 1e3);
  std::printf("impp_error     %.4g uA\n", r.impp_error * 1e6);
  std::printf("photocurrent_per_lux = %.10e;\n", r.params.base.photocurrent_per_lux);
  std::printf("saturation_current   = %.10e;\n", r.params.base.saturation_current);
  std::printf("ideality             = %.10f;\n", r.params.base.ideality);
  std::printf("recombination_chi    = %.10f;\n", r.params.recombination_chi);
  std::printf("photo_shunt_per_volt = %.10f;\n", r.params.photo_shunt_per_volt);
  const MertenAsiModel m(r.params);
  Conditions c; c.spectrum = Spectrum::kFluorescent;
  for (double lux : {200.,500.,1000.,2000.,5000.}) {
    c.illuminance_lux = lux;
    const double voc = m.open_circuit_voltage(c);
    const MppResult mpp = m.maximum_power_point(c);
    std::printf("lux %6.0f  Voc %.4f  Vmpp %.4f  Impp %7.2f uA  k %.4f  FF %.3f  Isc %7.2f uA\n",
                lux, voc, mpp.voltage, mpp.current*1e6, mpp.voltage/voc, m.fill_factor(c),
                m.short_circuit_current(c)*1e6);
  }
  return 0;
}
