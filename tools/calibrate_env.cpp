#include <cstdio>
#include "analysis/sampling_error.hpp"
#include "env/profiles.hpp"
#include "pv/cell_library.hpp"

using namespace focv;

static void report(const char* name, const env::LightTrace& trace) {
  const auto& cell = pv::schott_asi_1116929();
  const auto voc = trace.voc_series(cell, 300.15);
  for (double period : {10.0, 60.0, 300.0, 600.0}) {
    const double e = analysis::worst_case_mean_error(voc, static_cast<std::size_t>(period));
    std::printf("%-22s p=%5.0fs  E=%7.2f mV\n", name, period, e * 1e3);
  }
  // lux stats
  const auto lux = trace.equivalent_lux(cell);
  double mx = 0, daytime_mean = 0; int cnt = 0;
  for (double l : lux) { mx = std::max(mx, l); if (l > 5) { daytime_mean += l; ++cnt; } }
  std::printf("%-22s max_lux=%.0f  lit_mean=%.0f  lit_frac=%.2f\n", name, mx,
              cnt ? daytime_mean / cnt : 0.0, double(cnt) / lux.size());
}

int main() {
  report("desk_sunday", env::desk_sunday_blinds_closed());
  report("semi_mobile", env::semi_mobile_day());
  report("office_mixed", env::office_desk_mixed());
  return 0;
}
