// obs_report: fold a telemetry bundle into per-tier summary tables.
//
// Point it at any mix of the artifacts the focv binaries export with
// the shared --trace/--metrics/--snapshot/--flight flags; each file's
// type is sniffed from its content, so argument order is free:
//
//   ./build/tools/obs_report trace.json metrics.jsonl snapshot.json flight.json
//
// Sections (each printed only when an input supplies it):
//   metrics   — counters/gauges grouped by tier (the name prefix before
//               the first '.'), histograms with count/mean, from the
//               focv-obs-snapshot/v1 JSON and/or the focv-obs/v1 JSONL
//   events    — domain-event counts with first/last sim_t, from the
//               JSONL stream and/or a flight dump
//   spans     — wall-clock trace spans folded by name (count, total,
//               mean), from the Chrome trace_event JSON
//   flight    — dump reason and tail accounting, from focv-obs-flight/v1
//
// Exits 1 when a file cannot be read or parsed, 2 on unrecognised
// content — CI uses it as the smoke check that the exporters stay
// parseable.
#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/table.hpp"

namespace {

// ---------------------------------------------------------------------------
// Minimal recursive-descent JSON parser — enough for this repo's own
// exporters (objects, arrays, strings with escapes, doubles, literals).

struct Json {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<Json> array;
  std::vector<std::pair<std::string, Json>> object;

  [[nodiscard]] const Json* find(const std::string& key) const {
    for (const auto& [k, v] : object) {
      if (k == key) return &v;
    }
    return nullptr;
  }
  [[nodiscard]] double num_or(double fallback) const {
    return type == Type::kNumber ? number : fallback;
  }
};

class Parser {
 public:
  explicit Parser(const std::string& text) : s_(text) {}

  bool parse(Json& out) {
    skip_ws();
    if (!value(out)) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  void skip_ws() {
    while (pos_ < s_.size() && std::isspace(static_cast<unsigned char>(s_[pos_]))) ++pos_;
  }
  bool literal(const char* word, std::size_t n) {
    if (s_.compare(pos_, n, word) != 0) return false;
    pos_ += n;
    return true;
  }
  bool value(Json& out) {
    skip_ws();
    if (pos_ >= s_.size()) return false;
    const char c = s_[pos_];
    if (c == '{') return object(out);
    if (c == '[') return array(out);
    if (c == '"') {
      out.type = Json::Type::kString;
      return string(out.str);
    }
    if (c == 't') {
      out.type = Json::Type::kBool;
      out.boolean = true;
      return literal("true", 4);
    }
    if (c == 'f') {
      out.type = Json::Type::kBool;
      out.boolean = false;
      return literal("false", 5);
    }
    if (c == 'n') return literal("null", 4);
    return number(out);
  }
  bool number(Json& out) {
    char* end = nullptr;
    out.number = std::strtod(s_.c_str() + pos_, &end);
    if (end == s_.c_str() + pos_) return false;
    out.type = Json::Type::kNumber;
    pos_ = static_cast<std::size_t>(end - s_.c_str());
    return true;
  }
  bool string(std::string& out) {
    if (s_[pos_] != '"') return false;
    ++pos_;
    out.clear();
    while (pos_ < s_.size()) {
      const char c = s_[pos_++];
      if (c == '"') return true;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= s_.size()) return false;
      const char esc = s_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u':
          // The exporters only escape ASCII control characters; keep the
          // code point's low byte, which round-trips those exactly.
          if (pos_ + 4 > s_.size()) return false;
          out += static_cast<char>(std::strtol(s_.substr(pos_, 4).c_str(), nullptr, 16));
          pos_ += 4;
          break;
        default: return false;
      }
    }
    return false;
  }
  bool array(Json& out) {
    out.type = Json::Type::kArray;
    ++pos_;  // '['
    skip_ws();
    if (pos_ < s_.size() && s_[pos_] == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      Json element;
      if (!value(element)) return false;
      out.array.push_back(std::move(element));
      skip_ws();
      if (pos_ >= s_.size()) return false;
      if (s_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (s_[pos_] == ']') {
        ++pos_;
        return true;
      }
      return false;
    }
  }
  bool object(Json& out) {
    out.type = Json::Type::kObject;
    ++pos_;  // '{'
    skip_ws();
    if (pos_ < s_.size() && s_[pos_] == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      std::string key;
      if (!string(key)) return false;
      skip_ws();
      if (pos_ >= s_.size() || s_[pos_] != ':') return false;
      ++pos_;
      Json val;
      if (!value(val)) return false;
      out.object.emplace_back(std::move(key), std::move(val));
      skip_ws();
      if (pos_ >= s_.size()) return false;
      if (s_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (s_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// Folded report state.

struct MetricRow {
  std::string kind;  // counter / gauge / histogram
  double value = 0.0;
  double sum = 0.0;  // histograms
};

struct EventRow {
  std::uint64_t count = 0;
  double first_sim_t = 0.0;
  double last_sim_t = 0.0;
};

struct SpanRow {
  std::uint64_t count = 0;
  double total_us = 0.0;
};

struct Report {
  std::map<std::string, MetricRow> metrics;  // name -> row
  std::map<std::string, EventRow> events;
  std::map<std::string, SpanRow> spans;
  std::uint64_t sim_markers = 0;  // pid-2 (simulated time) trace records
  std::vector<std::string> flight_lines;
};

std::string tier_of(const std::string& name) {
  const std::size_t dot = name.find('.');
  return dot == std::string::npos ? name : name.substr(0, dot);
}

void fold_event(Report& report, const Json& line) {
  const Json* name = line.find("event");
  if (name == nullptr || name->type != Json::Type::kString) return;
  EventRow& row = report.events[name->str];
  const Json* sim_t = line.find("sim_t");
  const double at = sim_t != nullptr ? sim_t->num_or(0.0) : 0.0;
  if (row.count == 0) row.first_sim_t = at;
  row.last_sim_t = at;
  ++row.count;
}

void fold_metric_line(Report& report, const Json& line) {
  const Json* kind = line.find("kind");
  if (kind == nullptr || kind->type != Json::Type::kString) return;
  if (kind->str == "event") {
    fold_event(report, line);
    return;
  }
  const Json* name = line.find("name");
  if (name == nullptr) return;
  MetricRow& row = report.metrics[name->str];
  row.kind = kind->str;
  if (kind->str == "histogram") {
    if (const Json* count = line.find("count")) row.value = count->num_or(0.0);
    if (const Json* sum = line.find("sum")) row.sum = sum->num_or(0.0);
  } else if (const Json* value = line.find("value")) {
    row.value = value->num_or(0.0);
  }
}

bool fold_metrics_jsonl(Report& report, const std::string& text) {
  std::istringstream lines(text);
  std::string line;
  bool any = false;
  while (std::getline(lines, line)) {
    if (line.empty()) continue;
    Json parsed;
    if (!Parser(line).parse(parsed)) return false;
    fold_metric_line(report, parsed);
    any = true;
  }
  return any;
}

void fold_snapshot(Report& report, const Json& snapshot) {
  if (const Json* counters = snapshot.find("counters")) {
    for (const auto& [name, value] : counters->object) {
      report.metrics[name] = {"counter", value.num_or(0.0), 0.0};
    }
  }
  if (const Json* gauges = snapshot.find("gauges")) {
    for (const auto& [name, value] : gauges->object) {
      report.metrics[name] = {"gauge", value.num_or(0.0), 0.0};
    }
  }
  if (const Json* histograms = snapshot.find("histograms")) {
    for (const Json& h : histograms->array) {
      const Json* name = h.find("name");
      if (name == nullptr) continue;
      MetricRow& row = report.metrics[name->str];
      row.kind = "histogram";
      if (const Json* count = h.find("count")) row.value = count->num_or(0.0);
      if (const Json* sum = h.find("sum")) row.sum = sum->num_or(0.0);
    }
  }
}

void fold_trace(Report& report, const Json& trace) {
  const Json* events = trace.find("traceEvents");
  if (events == nullptr) return;
  for (const Json& e : events->array) {
    const Json* ph = e.find("ph");
    const Json* name = e.find("name");
    if (ph == nullptr || name == nullptr || ph->str == "M") continue;
    const Json* pid = e.find("pid");
    if (pid != nullptr && pid->num_or(1.0) == 2.0) {
      ++report.sim_markers;
      continue;
    }
    if (ph->str != "X") continue;
    SpanRow& row = report.spans[name->str];
    ++row.count;
    if (const Json* dur = e.find("dur")) row.total_us += dur->num_or(0.0);
  }
}

void fold_flight(Report& report, const Json& flight, const std::string& path) {
  std::ostringstream line;
  line << path << ": reason=";
  if (const Json* reason = flight.find("reason")) line << reason->str;
  if (const Json* dump = flight.find("dump")) line << "  dump=" << dump->num_or(0.0);
  if (const Json* seen = flight.find("events_seen")) {
    line << "  events_seen=" << static_cast<std::uint64_t>(seen->num_or(0.0));
  }
  if (const Json* evicted = flight.find("events_evicted")) {
    line << "  evicted=" << static_cast<std::uint64_t>(evicted->num_or(0.0));
  }
  if (const Json* events = flight.find("events")) {
    line << "  retained=" << events->array.size();
    for (const Json& e : events->array) fold_event(report, e);
  }
  report.flight_lines.push_back(line.str());
}

/// Sniff + fold one file. Returns 0 ok, 1 unreadable/unparseable,
/// 2 unrecognised content.
int fold_file(Report& report, const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f.good()) {
    std::fprintf(stderr, "obs_report: cannot read %s\n", path.c_str());
    return 1;
  }
  std::ostringstream buffer;
  buffer << f.rdbuf();
  const std::string text = buffer.str();

  // JSONL metric streams have one object per line; everything else is a
  // single JSON document.
  if (text.find("\"focv-obs/v1\"") != std::string::npos &&
      text.find("\"traceEvents\"") == std::string::npos &&
      text.find("\"focv-obs-flight/v1\"") == std::string::npos) {
    if (!fold_metrics_jsonl(report, text)) {
      std::fprintf(stderr, "obs_report: bad focv-obs/v1 JSONL in %s\n", path.c_str());
      return 1;
    }
    return 0;
  }
  Json doc;
  if (!Parser(text).parse(doc)) {
    std::fprintf(stderr, "obs_report: JSON parse failure in %s\n", path.c_str());
    return 1;
  }
  const Json* schema = doc.find("schema");
  if (doc.find("traceEvents") != nullptr) {
    fold_trace(report, doc);
    return 0;
  }
  if (schema != nullptr && schema->str == "focv-obs-snapshot/v1") {
    fold_snapshot(report, doc);
    return 0;
  }
  if (schema != nullptr && schema->str == "focv-obs-flight/v1") {
    fold_flight(report, doc, path);
    return 0;
  }
  std::fprintf(stderr, "obs_report: unrecognised content in %s\n", path.c_str());
  return 2;
}

void print_report(const Report& report) {
  using focv::ConsoleTable;
  if (!report.metrics.empty()) {
    // Grouped by tier: the map's lexicographic order already clusters
    // `fleet.*`, `node.*`, ... together; the tier column labels each
    // cluster's first row.
    ConsoleTable table({"tier", "metric", "kind", "value", "mean"});
    std::string last_tier;
    for (const auto& [name, row] : report.metrics) {
      const std::string tier = tier_of(name);
      const bool histogram = row.kind == "histogram";
      table.add_row({tier == last_tier ? "" : tier, name, row.kind,
                     ConsoleTable::num(row.value, row.value == static_cast<std::uint64_t>(row.value) ? 0 : 3),
                     histogram && row.value > 0.0 ? ConsoleTable::num(row.sum / row.value, 4)
                                                  : "-"});
      last_tier = tier;
    }
    std::printf("metrics (%zu):\n", report.metrics.size());
    table.print(std::cout);
  }
  if (!report.events.empty()) {
    ConsoleTable table({"event", "count", "first sim_t", "last sim_t"});
    std::uint64_t total = 0;
    for (const auto& [name, row] : report.events) {
      table.add_row({name, ConsoleTable::num(static_cast<double>(row.count), 0),
                     ConsoleTable::num(row.first_sim_t, 3),
                     ConsoleTable::num(row.last_sim_t, 3)});
      total += row.count;
    }
    std::printf("\ndomain events (%llu):\n", static_cast<unsigned long long>(total));
    table.print(std::cout);
  }
  if (!report.spans.empty()) {
    ConsoleTable table({"span", "count", "total ms", "mean us"});
    for (const auto& [name, row] : report.spans) {
      table.add_row({name, ConsoleTable::num(static_cast<double>(row.count), 0),
                     ConsoleTable::num(row.total_us / 1000.0, 3),
                     ConsoleTable::num(row.total_us / static_cast<double>(row.count), 1)});
    }
    std::printf("\nwall-clock spans:\n");
    table.print(std::cout);
    if (report.sim_markers > 0) {
      std::printf("plus %llu simulated-time records (pid 2)\n",
                  static_cast<unsigned long long>(report.sim_markers));
    }
  }
  for (const std::string& line : report.flight_lines) {
    std::printf("\nflight %s\n", line.c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::printf("usage: obs_report FILE...\n"
                "  FILE: any mix of --trace / --metrics / --snapshot / --flight\n"
                "  artifacts (type sniffed from content)\n");
    return 2;
  }
  Report report;
  for (int i = 1; i < argc; ++i) {
    const int rc = fold_file(report, argv[i]);
    if (rc != 0) return rc;
  }
  print_report(report);
  return 0;
}
