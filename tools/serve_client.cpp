// focv-serve client CLI: one request per invocation, response JSON on
// stdout.
//
//   serve_client --port N ping
//   serve_client --port N catalog
//   serve_client --port N sizing --env office --spec "focv[k=0.6]"
//   serve_client --port N sim    --env outdoor --spec pando
//   serve_client --port N fleet  --nodes 500 --seed 7
//   serve_client --port N stats
//   serve_client --port N shutdown
//   serve_client --port N raw '{"op":"sizing","env":"office"}'
//
// Exit status: 0 on ok:true, 3 on a structured server error, 1/2 on
// transport/usage problems.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "serve/client.hpp"
#include "serve/json.hpp"

namespace {

[[noreturn]] void usage(int code) {
  std::fprintf(code == 0 ? stdout : stderr,
               "usage: serve_client --port N <op> [--env NAME] [--spec SPEC]\n"
               "                    [--period S] [--nodes N] [--seed N]\n"
               "                    [--deadline-ms X] | raw '<request json>'\n"
               "ops: ping catalog sim sizing sweep fleet stats burn shutdown raw\n");
  std::exit(code);
}

const char* flag_value(int argc, char** argv, int& i) {
  if (i + 1 >= argc) {
    std::fprintf(stderr, "serve_client: %s needs a value\n", argv[i]);
    std::exit(2);
  }
  return argv[++i];
}

}  // namespace

int main(int argc, char** argv) {
  using focv::serve::Json;
  int port = 0;
  std::string op;
  std::string raw;
  std::vector<std::string> specs;  // --spec is repeatable (sweep)
  Json body = Json::object();
  body.set("id", Json::number(1));

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") usage(0);
    if (arg == "--port") {
      port = std::atoi(flag_value(argc, argv, i));
    } else if (arg == "--env") {
      body.set("env", Json::string(flag_value(argc, argv, i)));
    } else if (arg == "--spec") {
      specs.emplace_back(flag_value(argc, argv, i));
    } else if (arg == "--period") {
      body.set("report_period_s", Json::number(std::atof(flag_value(argc, argv, i))));
    } else if (arg == "--nodes") {
      body.set("nodes", Json::number(std::atof(flag_value(argc, argv, i))));
    } else if (arg == "--seed") {
      body.set("seed", Json::number(std::atof(flag_value(argc, argv, i))));
    } else if (arg == "--deadline-ms") {
      body.set("deadline_ms", Json::number(std::atof(flag_value(argc, argv, i))));
    } else if (op.empty() && arg[0] != '-') {
      op = arg;
    } else if (op == "raw" && raw.empty() && arg[0] != '-') {
      raw = arg;
    } else {
      std::fprintf(stderr, "serve_client: unexpected argument %s\n", argv[i]);
      usage(2);
    }
  }
  if (port <= 0 || op.empty()) usage(2);

  std::string request;
  if (op == "raw") {
    if (raw.empty()) usage(2);
    request = raw;
  } else {
    body.set("op", Json::string(op));
    if (op == "sweep") {
      Json list = Json::array();
      for (const std::string& spec : specs) list.push_back(Json::string(spec));
      body.set("specs", std::move(list));
    } else if (!specs.empty()) {
      body.set("spec", Json::string(specs.back()));
    }
    request = body.dump();
  }

  focv::serve::Client client;
  std::string error;
  if (!client.connect(static_cast<std::uint16_t>(port), error)) {
    std::fprintf(stderr, "serve_client: %s\n", error.c_str());
    return 1;
  }
  std::string response;
  if (!client.request(request, response)) {
    std::fprintf(stderr, "serve_client: transport error (is the daemon running?)\n");
    return 1;
  }
  std::printf("%s\n", response.c_str());
  Json parsed;
  if (Json::parse(response, parsed) && !parsed.bool_or("ok", false)) return 3;
  return 0;
}
