#include <cstdio>
#include "circuit/transient.hpp"
#include "circuit/devices_passive.hpp"
#include "core/netlists.hpp"

using namespace focv;
using namespace focv::circuit;

struct Timing { double t_on, period, iavg; };

static Timing measure(double rc, double rd) {
  Circuit ckt;
  auto vddn = ckt.node("vdd");
  ckt.add<VoltageSource>("Vdd", vddn, kGround, Waveform::dc(3.3));
  core::SystemSpec spec;
  spec.astable_r_charge = rc;
  spec.astable_r_discharge = rd;
  core::build_astable(ckt, vddn, spec);
  TransientOptions opt;
  opt.t_stop = 230.0;
  opt.start_from_dc = false;
  opt.dt_initial = 1e-5;
  opt.dt_max = 0.5;
  opt.dv_step_max = 0.4;
  Trace tr = transient_analyze(ckt, opt);
  auto rises = tr.crossing_times("ast_pulse", 1.65, true);
  auto falls = tr.crossing_times("ast_pulse", 1.65, false);
  Timing t{-1, -1, 0};
  if (rises.size() >= 3) {
    t.period = rises[2] - rises[1];
    for (double f : falls) if (f > rises[1]) { t.t_on = f - rises[1]; break; }
  }
  t.iavg = -tr.time_average("I(Vdd)", 5.0, 225.0);
  return t;
}

int main() {
  double rc = 44.5e3, rd = 107.9e6;
  for (int iter = 0; iter < 4; ++iter) {
    Timing t = measure(rc, rd);
    std::printf("rc=%.1fk rd=%.2fM -> t_on=%.2fms period=%.3fs iavg=%.3fuA\n",
                rc/1e3, rd/1e6, t.t_on*1e3, t.period, t.iavg*1e6);
    fflush(stdout);
    if (t.t_on < 0) return 1;
    rc *= 39e-3 / t.t_on;
    rd *= (69.039 - 0.039) / (t.period - t.t_on);
  }
  Timing t = measure(rc, rd);
  std::printf("FINAL rc=%.4fe3 rd=%.4fe6 -> t_on=%.2fms period=%.3fs iavg=%.3fuA\n",
              rc/1e3, rd/1e6, t.t_on*1e3, t.period, t.iavg*1e6);
  return 0;
}
