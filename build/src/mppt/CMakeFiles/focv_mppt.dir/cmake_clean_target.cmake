file(REMOVE_RECURSE
  "libfocv_mppt.a"
)
