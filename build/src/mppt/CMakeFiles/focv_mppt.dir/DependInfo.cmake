
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mppt/baselines.cpp" "src/mppt/CMakeFiles/focv_mppt.dir/baselines.cpp.o" "gcc" "src/mppt/CMakeFiles/focv_mppt.dir/baselines.cpp.o.d"
  "/root/repo/src/mppt/focv_sample_hold.cpp" "src/mppt/CMakeFiles/focv_mppt.dir/focv_sample_hold.cpp.o" "gcc" "src/mppt/CMakeFiles/focv_mppt.dir/focv_sample_hold.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/focv_common.dir/DependInfo.cmake"
  "/root/repo/build/src/analog/CMakeFiles/focv_analog.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
