file(REMOVE_RECURSE
  "CMakeFiles/focv_mppt.dir/baselines.cpp.o"
  "CMakeFiles/focv_mppt.dir/baselines.cpp.o.d"
  "CMakeFiles/focv_mppt.dir/focv_sample_hold.cpp.o"
  "CMakeFiles/focv_mppt.dir/focv_sample_hold.cpp.o.d"
  "libfocv_mppt.a"
  "libfocv_mppt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/focv_mppt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
