# Empty dependencies file for focv_mppt.
# This may be replaced when dependencies are built.
