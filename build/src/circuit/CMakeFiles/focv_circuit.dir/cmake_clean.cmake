file(REMOVE_RECURSE
  "CMakeFiles/focv_circuit.dir/ac_analysis.cpp.o"
  "CMakeFiles/focv_circuit.dir/ac_analysis.cpp.o.d"
  "CMakeFiles/focv_circuit.dir/circuit.cpp.o"
  "CMakeFiles/focv_circuit.dir/circuit.cpp.o.d"
  "CMakeFiles/focv_circuit.dir/dc_analysis.cpp.o"
  "CMakeFiles/focv_circuit.dir/dc_analysis.cpp.o.d"
  "CMakeFiles/focv_circuit.dir/devices_active.cpp.o"
  "CMakeFiles/focv_circuit.dir/devices_active.cpp.o.d"
  "CMakeFiles/focv_circuit.dir/devices_passive.cpp.o"
  "CMakeFiles/focv_circuit.dir/devices_passive.cpp.o.d"
  "CMakeFiles/focv_circuit.dir/devices_sources.cpp.o"
  "CMakeFiles/focv_circuit.dir/devices_sources.cpp.o.d"
  "CMakeFiles/focv_circuit.dir/matrix.cpp.o"
  "CMakeFiles/focv_circuit.dir/matrix.cpp.o.d"
  "CMakeFiles/focv_circuit.dir/netlist_parser.cpp.o"
  "CMakeFiles/focv_circuit.dir/netlist_parser.cpp.o.d"
  "CMakeFiles/focv_circuit.dir/netlist_writer.cpp.o"
  "CMakeFiles/focv_circuit.dir/netlist_writer.cpp.o.d"
  "CMakeFiles/focv_circuit.dir/solver.cpp.o"
  "CMakeFiles/focv_circuit.dir/solver.cpp.o.d"
  "CMakeFiles/focv_circuit.dir/transient.cpp.o"
  "CMakeFiles/focv_circuit.dir/transient.cpp.o.d"
  "CMakeFiles/focv_circuit.dir/waveform.cpp.o"
  "CMakeFiles/focv_circuit.dir/waveform.cpp.o.d"
  "libfocv_circuit.a"
  "libfocv_circuit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/focv_circuit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
