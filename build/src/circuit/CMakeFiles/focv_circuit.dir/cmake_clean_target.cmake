file(REMOVE_RECURSE
  "libfocv_circuit.a"
)
