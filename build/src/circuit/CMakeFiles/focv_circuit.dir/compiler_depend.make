# Empty compiler generated dependencies file for focv_circuit.
# This may be replaced when dependencies are built.
