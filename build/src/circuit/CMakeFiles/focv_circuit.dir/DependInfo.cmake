
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/circuit/ac_analysis.cpp" "src/circuit/CMakeFiles/focv_circuit.dir/ac_analysis.cpp.o" "gcc" "src/circuit/CMakeFiles/focv_circuit.dir/ac_analysis.cpp.o.d"
  "/root/repo/src/circuit/circuit.cpp" "src/circuit/CMakeFiles/focv_circuit.dir/circuit.cpp.o" "gcc" "src/circuit/CMakeFiles/focv_circuit.dir/circuit.cpp.o.d"
  "/root/repo/src/circuit/dc_analysis.cpp" "src/circuit/CMakeFiles/focv_circuit.dir/dc_analysis.cpp.o" "gcc" "src/circuit/CMakeFiles/focv_circuit.dir/dc_analysis.cpp.o.d"
  "/root/repo/src/circuit/devices_active.cpp" "src/circuit/CMakeFiles/focv_circuit.dir/devices_active.cpp.o" "gcc" "src/circuit/CMakeFiles/focv_circuit.dir/devices_active.cpp.o.d"
  "/root/repo/src/circuit/devices_passive.cpp" "src/circuit/CMakeFiles/focv_circuit.dir/devices_passive.cpp.o" "gcc" "src/circuit/CMakeFiles/focv_circuit.dir/devices_passive.cpp.o.d"
  "/root/repo/src/circuit/devices_sources.cpp" "src/circuit/CMakeFiles/focv_circuit.dir/devices_sources.cpp.o" "gcc" "src/circuit/CMakeFiles/focv_circuit.dir/devices_sources.cpp.o.d"
  "/root/repo/src/circuit/matrix.cpp" "src/circuit/CMakeFiles/focv_circuit.dir/matrix.cpp.o" "gcc" "src/circuit/CMakeFiles/focv_circuit.dir/matrix.cpp.o.d"
  "/root/repo/src/circuit/netlist_parser.cpp" "src/circuit/CMakeFiles/focv_circuit.dir/netlist_parser.cpp.o" "gcc" "src/circuit/CMakeFiles/focv_circuit.dir/netlist_parser.cpp.o.d"
  "/root/repo/src/circuit/netlist_writer.cpp" "src/circuit/CMakeFiles/focv_circuit.dir/netlist_writer.cpp.o" "gcc" "src/circuit/CMakeFiles/focv_circuit.dir/netlist_writer.cpp.o.d"
  "/root/repo/src/circuit/solver.cpp" "src/circuit/CMakeFiles/focv_circuit.dir/solver.cpp.o" "gcc" "src/circuit/CMakeFiles/focv_circuit.dir/solver.cpp.o.d"
  "/root/repo/src/circuit/transient.cpp" "src/circuit/CMakeFiles/focv_circuit.dir/transient.cpp.o" "gcc" "src/circuit/CMakeFiles/focv_circuit.dir/transient.cpp.o.d"
  "/root/repo/src/circuit/waveform.cpp" "src/circuit/CMakeFiles/focv_circuit.dir/waveform.cpp.o" "gcc" "src/circuit/CMakeFiles/focv_circuit.dir/waveform.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/focv_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
