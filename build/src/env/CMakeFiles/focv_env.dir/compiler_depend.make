# Empty compiler generated dependencies file for focv_env.
# This may be replaced when dependencies are built.
