file(REMOVE_RECURSE
  "libfocv_env.a"
)
