
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/env/light_trace.cpp" "src/env/CMakeFiles/focv_env.dir/light_trace.cpp.o" "gcc" "src/env/CMakeFiles/focv_env.dir/light_trace.cpp.o.d"
  "/root/repo/src/env/profiles.cpp" "src/env/CMakeFiles/focv_env.dir/profiles.cpp.o" "gcc" "src/env/CMakeFiles/focv_env.dir/profiles.cpp.o.d"
  "/root/repo/src/env/solar.cpp" "src/env/CMakeFiles/focv_env.dir/solar.cpp.o" "gcc" "src/env/CMakeFiles/focv_env.dir/solar.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/focv_common.dir/DependInfo.cmake"
  "/root/repo/build/src/pv/CMakeFiles/focv_pv.dir/DependInfo.cmake"
  "/root/repo/build/src/circuit/CMakeFiles/focv_circuit.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
