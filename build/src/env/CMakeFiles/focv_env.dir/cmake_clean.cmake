file(REMOVE_RECURSE
  "CMakeFiles/focv_env.dir/light_trace.cpp.o"
  "CMakeFiles/focv_env.dir/light_trace.cpp.o.d"
  "CMakeFiles/focv_env.dir/profiles.cpp.o"
  "CMakeFiles/focv_env.dir/profiles.cpp.o.d"
  "CMakeFiles/focv_env.dir/solar.cpp.o"
  "CMakeFiles/focv_env.dir/solar.cpp.o.d"
  "libfocv_env.a"
  "libfocv_env.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/focv_env.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
