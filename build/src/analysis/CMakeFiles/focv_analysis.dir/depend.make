# Empty dependencies file for focv_analysis.
# This may be replaced when dependencies are built.
