file(REMOVE_RECURSE
  "CMakeFiles/focv_analysis.dir/sampling_error.cpp.o"
  "CMakeFiles/focv_analysis.dir/sampling_error.cpp.o.d"
  "libfocv_analysis.a"
  "libfocv_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/focv_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
