file(REMOVE_RECURSE
  "libfocv_analysis.a"
)
