file(REMOVE_RECURSE
  "CMakeFiles/focv_analog.dir/astable.cpp.o"
  "CMakeFiles/focv_analog.dir/astable.cpp.o.d"
  "CMakeFiles/focv_analog.dir/power_budget.cpp.o"
  "CMakeFiles/focv_analog.dir/power_budget.cpp.o.d"
  "CMakeFiles/focv_analog.dir/sample_hold.cpp.o"
  "CMakeFiles/focv_analog.dir/sample_hold.cpp.o.d"
  "libfocv_analog.a"
  "libfocv_analog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/focv_analog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
