
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analog/astable.cpp" "src/analog/CMakeFiles/focv_analog.dir/astable.cpp.o" "gcc" "src/analog/CMakeFiles/focv_analog.dir/astable.cpp.o.d"
  "/root/repo/src/analog/power_budget.cpp" "src/analog/CMakeFiles/focv_analog.dir/power_budget.cpp.o" "gcc" "src/analog/CMakeFiles/focv_analog.dir/power_budget.cpp.o.d"
  "/root/repo/src/analog/sample_hold.cpp" "src/analog/CMakeFiles/focv_analog.dir/sample_hold.cpp.o" "gcc" "src/analog/CMakeFiles/focv_analog.dir/sample_hold.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/focv_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
