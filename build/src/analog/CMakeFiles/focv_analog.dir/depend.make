# Empty dependencies file for focv_analog.
# This may be replaced when dependencies are built.
