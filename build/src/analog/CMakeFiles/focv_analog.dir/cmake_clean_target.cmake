file(REMOVE_RECURSE
  "libfocv_analog.a"
)
