file(REMOVE_RECURSE
  "libfocv_teg.a"
)
