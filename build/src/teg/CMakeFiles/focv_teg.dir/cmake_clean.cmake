file(REMOVE_RECURSE
  "CMakeFiles/focv_teg.dir/teg_harvest.cpp.o"
  "CMakeFiles/focv_teg.dir/teg_harvest.cpp.o.d"
  "CMakeFiles/focv_teg.dir/teg_model.cpp.o"
  "CMakeFiles/focv_teg.dir/teg_model.cpp.o.d"
  "libfocv_teg.a"
  "libfocv_teg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/focv_teg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
