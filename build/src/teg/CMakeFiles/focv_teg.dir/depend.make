# Empty dependencies file for focv_teg.
# This may be replaced when dependencies are built.
