file(REMOVE_RECURSE
  "CMakeFiles/focv_node.dir/harvester_node.cpp.o"
  "CMakeFiles/focv_node.dir/harvester_node.cpp.o.d"
  "CMakeFiles/focv_node.dir/sizing.cpp.o"
  "CMakeFiles/focv_node.dir/sizing.cpp.o.d"
  "libfocv_node.a"
  "libfocv_node.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/focv_node.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
