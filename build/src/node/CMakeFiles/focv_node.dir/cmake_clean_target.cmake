file(REMOVE_RECURSE
  "libfocv_node.a"
)
