
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/node/harvester_node.cpp" "src/node/CMakeFiles/focv_node.dir/harvester_node.cpp.o" "gcc" "src/node/CMakeFiles/focv_node.dir/harvester_node.cpp.o.d"
  "/root/repo/src/node/sizing.cpp" "src/node/CMakeFiles/focv_node.dir/sizing.cpp.o" "gcc" "src/node/CMakeFiles/focv_node.dir/sizing.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/focv_common.dir/DependInfo.cmake"
  "/root/repo/build/src/pv/CMakeFiles/focv_pv.dir/DependInfo.cmake"
  "/root/repo/build/src/env/CMakeFiles/focv_env.dir/DependInfo.cmake"
  "/root/repo/build/src/mppt/CMakeFiles/focv_mppt.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/focv_power.dir/DependInfo.cmake"
  "/root/repo/build/src/analog/CMakeFiles/focv_analog.dir/DependInfo.cmake"
  "/root/repo/build/src/circuit/CMakeFiles/focv_circuit.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
