# Empty dependencies file for focv_node.
# This may be replaced when dependencies are built.
