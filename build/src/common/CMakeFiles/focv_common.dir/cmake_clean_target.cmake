file(REMOVE_RECURSE
  "libfocv_common.a"
)
