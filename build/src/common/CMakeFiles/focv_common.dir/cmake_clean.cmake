file(REMOVE_RECURSE
  "CMakeFiles/focv_common.dir/ascii_plot.cpp.o"
  "CMakeFiles/focv_common.dir/ascii_plot.cpp.o.d"
  "CMakeFiles/focv_common.dir/csv.cpp.o"
  "CMakeFiles/focv_common.dir/csv.cpp.o.d"
  "CMakeFiles/focv_common.dir/math.cpp.o"
  "CMakeFiles/focv_common.dir/math.cpp.o.d"
  "CMakeFiles/focv_common.dir/nelder_mead.cpp.o"
  "CMakeFiles/focv_common.dir/nelder_mead.cpp.o.d"
  "CMakeFiles/focv_common.dir/table.cpp.o"
  "CMakeFiles/focv_common.dir/table.cpp.o.d"
  "libfocv_common.a"
  "libfocv_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/focv_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
