# Empty compiler generated dependencies file for focv_common.
# This may be replaced when dependencies are built.
