file(REMOVE_RECURSE
  "libfocv_power.a"
)
