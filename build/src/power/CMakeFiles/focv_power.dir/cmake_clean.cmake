file(REMOVE_RECURSE
  "CMakeFiles/focv_power.dir/battery.cpp.o"
  "CMakeFiles/focv_power.dir/battery.cpp.o.d"
  "CMakeFiles/focv_power.dir/coldstart.cpp.o"
  "CMakeFiles/focv_power.dir/coldstart.cpp.o.d"
  "CMakeFiles/focv_power.dir/load.cpp.o"
  "CMakeFiles/focv_power.dir/load.cpp.o.d"
  "CMakeFiles/focv_power.dir/storage.cpp.o"
  "CMakeFiles/focv_power.dir/storage.cpp.o.d"
  "libfocv_power.a"
  "libfocv_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/focv_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
