
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/power/battery.cpp" "src/power/CMakeFiles/focv_power.dir/battery.cpp.o" "gcc" "src/power/CMakeFiles/focv_power.dir/battery.cpp.o.d"
  "/root/repo/src/power/coldstart.cpp" "src/power/CMakeFiles/focv_power.dir/coldstart.cpp.o" "gcc" "src/power/CMakeFiles/focv_power.dir/coldstart.cpp.o.d"
  "/root/repo/src/power/load.cpp" "src/power/CMakeFiles/focv_power.dir/load.cpp.o" "gcc" "src/power/CMakeFiles/focv_power.dir/load.cpp.o.d"
  "/root/repo/src/power/storage.cpp" "src/power/CMakeFiles/focv_power.dir/storage.cpp.o" "gcc" "src/power/CMakeFiles/focv_power.dir/storage.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/focv_common.dir/DependInfo.cmake"
  "/root/repo/build/src/pv/CMakeFiles/focv_pv.dir/DependInfo.cmake"
  "/root/repo/build/src/circuit/CMakeFiles/focv_circuit.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
