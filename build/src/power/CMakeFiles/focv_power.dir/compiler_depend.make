# Empty compiler generated dependencies file for focv_power.
# This may be replaced when dependencies are built.
