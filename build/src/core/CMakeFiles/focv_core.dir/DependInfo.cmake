
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/focv_system.cpp" "src/core/CMakeFiles/focv_core.dir/focv_system.cpp.o" "gcc" "src/core/CMakeFiles/focv_core.dir/focv_system.cpp.o.d"
  "/root/repo/src/core/netlists.cpp" "src/core/CMakeFiles/focv_core.dir/netlists.cpp.o" "gcc" "src/core/CMakeFiles/focv_core.dir/netlists.cpp.o.d"
  "/root/repo/src/core/tolerance.cpp" "src/core/CMakeFiles/focv_core.dir/tolerance.cpp.o" "gcc" "src/core/CMakeFiles/focv_core.dir/tolerance.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/focv_common.dir/DependInfo.cmake"
  "/root/repo/build/src/circuit/CMakeFiles/focv_circuit.dir/DependInfo.cmake"
  "/root/repo/build/src/pv/CMakeFiles/focv_pv.dir/DependInfo.cmake"
  "/root/repo/build/src/analog/CMakeFiles/focv_analog.dir/DependInfo.cmake"
  "/root/repo/build/src/mppt/CMakeFiles/focv_mppt.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
