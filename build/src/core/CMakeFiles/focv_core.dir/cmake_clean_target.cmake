file(REMOVE_RECURSE
  "libfocv_core.a"
)
