# Empty dependencies file for focv_core.
# This may be replaced when dependencies are built.
