file(REMOVE_RECURSE
  "CMakeFiles/focv_core.dir/focv_system.cpp.o"
  "CMakeFiles/focv_core.dir/focv_system.cpp.o.d"
  "CMakeFiles/focv_core.dir/netlists.cpp.o"
  "CMakeFiles/focv_core.dir/netlists.cpp.o.d"
  "CMakeFiles/focv_core.dir/tolerance.cpp.o"
  "CMakeFiles/focv_core.dir/tolerance.cpp.o.d"
  "libfocv_core.a"
  "libfocv_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/focv_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
