file(REMOVE_RECURSE
  "CMakeFiles/focv_pv.dir/calibration.cpp.o"
  "CMakeFiles/focv_pv.dir/calibration.cpp.o.d"
  "CMakeFiles/focv_pv.dir/cell_library.cpp.o"
  "CMakeFiles/focv_pv.dir/cell_library.cpp.o.d"
  "CMakeFiles/focv_pv.dir/cell_model.cpp.o"
  "CMakeFiles/focv_pv.dir/cell_model.cpp.o.d"
  "CMakeFiles/focv_pv.dir/diode_models.cpp.o"
  "CMakeFiles/focv_pv.dir/diode_models.cpp.o.d"
  "CMakeFiles/focv_pv.dir/pv_device.cpp.o"
  "CMakeFiles/focv_pv.dir/pv_device.cpp.o.d"
  "libfocv_pv.a"
  "libfocv_pv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/focv_pv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
