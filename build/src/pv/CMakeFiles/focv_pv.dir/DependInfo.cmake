
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pv/calibration.cpp" "src/pv/CMakeFiles/focv_pv.dir/calibration.cpp.o" "gcc" "src/pv/CMakeFiles/focv_pv.dir/calibration.cpp.o.d"
  "/root/repo/src/pv/cell_library.cpp" "src/pv/CMakeFiles/focv_pv.dir/cell_library.cpp.o" "gcc" "src/pv/CMakeFiles/focv_pv.dir/cell_library.cpp.o.d"
  "/root/repo/src/pv/cell_model.cpp" "src/pv/CMakeFiles/focv_pv.dir/cell_model.cpp.o" "gcc" "src/pv/CMakeFiles/focv_pv.dir/cell_model.cpp.o.d"
  "/root/repo/src/pv/diode_models.cpp" "src/pv/CMakeFiles/focv_pv.dir/diode_models.cpp.o" "gcc" "src/pv/CMakeFiles/focv_pv.dir/diode_models.cpp.o.d"
  "/root/repo/src/pv/pv_device.cpp" "src/pv/CMakeFiles/focv_pv.dir/pv_device.cpp.o" "gcc" "src/pv/CMakeFiles/focv_pv.dir/pv_device.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/focv_common.dir/DependInfo.cmake"
  "/root/repo/build/src/circuit/CMakeFiles/focv_circuit.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
