file(REMOVE_RECURSE
  "libfocv_pv.a"
)
