# Empty compiler generated dependencies file for focv_pv.
# This may be replaced when dependencies are built.
