file(REMOVE_RECURSE
  "CMakeFiles/sizing_tool.dir/sizing_tool.cpp.o"
  "CMakeFiles/sizing_tool.dir/sizing_tool.cpp.o.d"
  "sizing_tool"
  "sizing_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sizing_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
