# Empty compiler generated dependencies file for sizing_tool.
# This may be replaced when dependencies are built.
