file(REMOVE_RECURSE
  "CMakeFiles/indoor_office_node.dir/indoor_office_node.cpp.o"
  "CMakeFiles/indoor_office_node.dir/indoor_office_node.cpp.o.d"
  "indoor_office_node"
  "indoor_office_node.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/indoor_office_node.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
