# Empty dependencies file for indoor_office_node.
# This may be replaced when dependencies are built.
