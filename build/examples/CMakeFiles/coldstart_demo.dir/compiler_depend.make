# Empty compiler generated dependencies file for coldstart_demo.
# This may be replaced when dependencies are built.
