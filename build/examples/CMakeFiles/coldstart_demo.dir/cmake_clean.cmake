file(REMOVE_RECURSE
  "CMakeFiles/coldstart_demo.dir/coldstart_demo.cpp.o"
  "CMakeFiles/coldstart_demo.dir/coldstart_demo.cpp.o.d"
  "coldstart_demo"
  "coldstart_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coldstart_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
