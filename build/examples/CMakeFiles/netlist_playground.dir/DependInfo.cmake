
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/netlist_playground.cpp" "examples/CMakeFiles/netlist_playground.dir/netlist_playground.cpp.o" "gcc" "examples/CMakeFiles/netlist_playground.dir/netlist_playground.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/teg/CMakeFiles/focv_teg.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/focv_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/node/CMakeFiles/focv_node.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/focv_core.dir/DependInfo.cmake"
  "/root/repo/build/src/mppt/CMakeFiles/focv_mppt.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/focv_power.dir/DependInfo.cmake"
  "/root/repo/build/src/env/CMakeFiles/focv_env.dir/DependInfo.cmake"
  "/root/repo/build/src/analog/CMakeFiles/focv_analog.dir/DependInfo.cmake"
  "/root/repo/build/src/pv/CMakeFiles/focv_pv.dir/DependInfo.cmake"
  "/root/repo/build/src/circuit/CMakeFiles/focv_circuit.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/focv_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
