# Empty compiler generated dependencies file for wearable_mixed_light.
# This may be replaced when dependencies are built.
