file(REMOVE_RECURSE
  "CMakeFiles/wearable_mixed_light.dir/wearable_mixed_light.cpp.o"
  "CMakeFiles/wearable_mixed_light.dir/wearable_mixed_light.cpp.o.d"
  "wearable_mixed_light"
  "wearable_mixed_light.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wearable_mixed_light.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
