file(REMOVE_RECURSE
  "CMakeFiles/teg_wearable.dir/teg_wearable.cpp.o"
  "CMakeFiles/teg_wearable.dir/teg_wearable.cpp.o.d"
  "teg_wearable"
  "teg_wearable.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/teg_wearable.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
