# Empty dependencies file for teg_wearable.
# This may be replaced when dependencies are built.
