file(REMOVE_RECURSE
  "../bench/power_budget"
  "../bench/power_budget.pdb"
  "CMakeFiles/power_budget.dir/power_budget.cpp.o"
  "CMakeFiles/power_budget.dir/power_budget.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/power_budget.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
