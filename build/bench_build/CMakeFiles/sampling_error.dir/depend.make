# Empty dependencies file for sampling_error.
# This may be replaced when dependencies are built.
