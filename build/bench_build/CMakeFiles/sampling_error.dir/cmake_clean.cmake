file(REMOVE_RECURSE
  "../bench/sampling_error"
  "../bench/sampling_error.pdb"
  "CMakeFiles/sampling_error.dir/sampling_error.cpp.o"
  "CMakeFiles/sampling_error.dir/sampling_error.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sampling_error.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
