# Empty compiler generated dependencies file for ext_converter_switching.
# This may be replaced when dependencies are built.
