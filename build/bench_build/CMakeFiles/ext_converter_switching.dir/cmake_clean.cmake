file(REMOVE_RECURSE
  "../bench/ext_converter_switching"
  "../bench/ext_converter_switching.pdb"
  "CMakeFiles/ext_converter_switching.dir/ext_converter_switching.cpp.o"
  "CMakeFiles/ext_converter_switching.dir/ext_converter_switching.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_converter_switching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
