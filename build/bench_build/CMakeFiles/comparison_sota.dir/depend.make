# Empty dependencies file for comparison_sota.
# This may be replaced when dependencies are built.
