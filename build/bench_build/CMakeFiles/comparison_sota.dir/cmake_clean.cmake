file(REMOVE_RECURSE
  "../bench/comparison_sota"
  "../bench/comparison_sota.pdb"
  "CMakeFiles/comparison_sota.dir/comparison_sota.cpp.o"
  "CMakeFiles/comparison_sota.dir/comparison_sota.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/comparison_sota.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
