file(REMOVE_RECURSE
  "../bench/coldstart"
  "../bench/coldstart.pdb"
  "CMakeFiles/coldstart.dir/coldstart.cpp.o"
  "CMakeFiles/coldstart.dir/coldstart.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coldstart.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
