# Empty dependencies file for coldstart.
# This may be replaced when dependencies are built.
