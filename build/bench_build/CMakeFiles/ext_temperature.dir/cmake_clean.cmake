file(REMOVE_RECURSE
  "../bench/ext_temperature"
  "../bench/ext_temperature.pdb"
  "CMakeFiles/ext_temperature.dir/ext_temperature.cpp.o"
  "CMakeFiles/ext_temperature.dir/ext_temperature.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_temperature.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
