# Empty dependencies file for ext_tolerance_mc.
# This may be replaced when dependencies are built.
