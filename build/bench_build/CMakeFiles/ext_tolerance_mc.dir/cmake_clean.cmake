file(REMOVE_RECURSE
  "../bench/ext_tolerance_mc"
  "../bench/ext_tolerance_mc.pdb"
  "CMakeFiles/ext_tolerance_mc.dir/ext_tolerance_mc.cpp.o"
  "CMakeFiles/ext_tolerance_mc.dir/ext_tolerance_mc.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_tolerance_mc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
