file(REMOVE_RECURSE
  "../bench/table1_tracking"
  "../bench/table1_tracking.pdb"
  "CMakeFiles/table1_tracking.dir/table1_tracking.cpp.o"
  "CMakeFiles/table1_tracking.dir/table1_tracking.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_tracking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
