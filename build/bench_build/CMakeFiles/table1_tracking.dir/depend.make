# Empty dependencies file for table1_tracking.
# This may be replaced when dependencies are built.
