file(REMOVE_RECURSE
  "../bench/ablation_nonidealities"
  "../bench/ablation_nonidealities.pdb"
  "CMakeFiles/ablation_nonidealities.dir/ablation_nonidealities.cpp.o"
  "CMakeFiles/ablation_nonidealities.dir/ablation_nonidealities.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_nonidealities.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
