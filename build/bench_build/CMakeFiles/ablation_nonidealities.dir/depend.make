# Empty dependencies file for ablation_nonidealities.
# This may be replaced when dependencies are built.
