# Empty compiler generated dependencies file for ext_teg.
# This may be replaced when dependencies are built.
