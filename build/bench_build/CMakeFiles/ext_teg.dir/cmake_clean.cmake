file(REMOVE_RECURSE
  "../bench/ext_teg"
  "../bench/ext_teg.pdb"
  "CMakeFiles/ext_teg.dir/ext_teg.cpp.o"
  "CMakeFiles/ext_teg.dir/ext_teg.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_teg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
