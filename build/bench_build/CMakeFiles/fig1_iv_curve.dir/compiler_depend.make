# Empty compiler generated dependencies file for fig1_iv_curve.
# This may be replaced when dependencies are built.
