file(REMOVE_RECURSE
  "../bench/fig1_iv_curve"
  "../bench/fig1_iv_curve.pdb"
  "CMakeFiles/fig1_iv_curve.dir/fig1_iv_curve.cpp.o"
  "CMakeFiles/fig1_iv_curve.dir/fig1_iv_curve.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_iv_curve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
