# Empty dependencies file for fig4_sampling_transient.
# This may be replaced when dependencies are built.
