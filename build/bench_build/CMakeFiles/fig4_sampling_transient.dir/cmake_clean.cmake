file(REMOVE_RECURSE
  "../bench/fig4_sampling_transient"
  "../bench/fig4_sampling_transient.pdb"
  "CMakeFiles/fig4_sampling_transient.dir/fig4_sampling_transient.cpp.o"
  "CMakeFiles/fig4_sampling_transient.dir/fig4_sampling_transient.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_sampling_transient.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
