file(REMOVE_RECURSE
  "../bench/ablation_hold_period"
  "../bench/ablation_hold_period.pdb"
  "CMakeFiles/ablation_hold_period.dir/ablation_hold_period.cpp.o"
  "CMakeFiles/ablation_hold_period.dir/ablation_hold_period.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_hold_period.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
