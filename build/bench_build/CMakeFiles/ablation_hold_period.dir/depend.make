# Empty dependencies file for ablation_hold_period.
# This may be replaced when dependencies are built.
