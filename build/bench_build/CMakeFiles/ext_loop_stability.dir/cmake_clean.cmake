file(REMOVE_RECURSE
  "../bench/ext_loop_stability"
  "../bench/ext_loop_stability.pdb"
  "CMakeFiles/ext_loop_stability.dir/ext_loop_stability.cpp.o"
  "CMakeFiles/ext_loop_stability.dir/ext_loop_stability.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_loop_stability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
