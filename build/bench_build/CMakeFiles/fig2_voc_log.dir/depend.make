# Empty dependencies file for fig2_voc_log.
# This may be replaced when dependencies are built.
