file(REMOVE_RECURSE
  "../bench/fig2_voc_log"
  "../bench/fig2_voc_log.pdb"
  "CMakeFiles/fig2_voc_log.dir/fig2_voc_log.cpp.o"
  "CMakeFiles/fig2_voc_log.dir/fig2_voc_log.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_voc_log.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
