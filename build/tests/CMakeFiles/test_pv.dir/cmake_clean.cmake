file(REMOVE_RECURSE
  "CMakeFiles/test_pv.dir/pv/calibration_test.cpp.o"
  "CMakeFiles/test_pv.dir/pv/calibration_test.cpp.o.d"
  "CMakeFiles/test_pv.dir/pv/cell_library_test.cpp.o"
  "CMakeFiles/test_pv.dir/pv/cell_library_test.cpp.o.d"
  "CMakeFiles/test_pv.dir/pv/diode_models_test.cpp.o"
  "CMakeFiles/test_pv.dir/pv/diode_models_test.cpp.o.d"
  "CMakeFiles/test_pv.dir/pv/pv_device_test.cpp.o"
  "CMakeFiles/test_pv.dir/pv/pv_device_test.cpp.o.d"
  "test_pv"
  "test_pv.pdb"
  "test_pv[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
