# Empty compiler generated dependencies file for test_pv.
# This may be replaced when dependencies are built.
