# Empty compiler generated dependencies file for test_repro.
# This may be replaced when dependencies are built.
