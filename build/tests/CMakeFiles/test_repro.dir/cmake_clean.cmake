file(REMOVE_RECURSE
  "CMakeFiles/test_repro.dir/repro/coldstart_repro_test.cpp.o"
  "CMakeFiles/test_repro.dir/repro/coldstart_repro_test.cpp.o.d"
  "CMakeFiles/test_repro.dir/repro/comparison_repro_test.cpp.o"
  "CMakeFiles/test_repro.dir/repro/comparison_repro_test.cpp.o.d"
  "CMakeFiles/test_repro.dir/repro/fig2_repro_test.cpp.o"
  "CMakeFiles/test_repro.dir/repro/fig2_repro_test.cpp.o.d"
  "CMakeFiles/test_repro.dir/repro/power_budget_repro_test.cpp.o"
  "CMakeFiles/test_repro.dir/repro/power_budget_repro_test.cpp.o.d"
  "CMakeFiles/test_repro.dir/repro/sampling_error_repro_test.cpp.o"
  "CMakeFiles/test_repro.dir/repro/sampling_error_repro_test.cpp.o.d"
  "CMakeFiles/test_repro.dir/repro/table1_repro_test.cpp.o"
  "CMakeFiles/test_repro.dir/repro/table1_repro_test.cpp.o.d"
  "test_repro"
  "test_repro.pdb"
  "test_repro[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_repro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
