file(REMOVE_RECURSE
  "CMakeFiles/test_core.dir/core/cross_fidelity_test.cpp.o"
  "CMakeFiles/test_core.dir/core/cross_fidelity_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/focv_system_test.cpp.o"
  "CMakeFiles/test_core.dir/core/focv_system_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/netlist_astable_test.cpp.o"
  "CMakeFiles/test_core.dir/core/netlist_astable_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/netlist_coldstart_test.cpp.o"
  "CMakeFiles/test_core.dir/core/netlist_coldstart_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/netlist_fig3_test.cpp.o"
  "CMakeFiles/test_core.dir/core/netlist_fig3_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/switching_converter_test.cpp.o"
  "CMakeFiles/test_core.dir/core/switching_converter_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/tolerance_test.cpp.o"
  "CMakeFiles/test_core.dir/core/tolerance_test.cpp.o.d"
  "test_core"
  "test_core.pdb"
  "test_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
