# Empty dependencies file for test_analog.
# This may be replaced when dependencies are built.
