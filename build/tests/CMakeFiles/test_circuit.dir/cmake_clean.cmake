file(REMOVE_RECURSE
  "CMakeFiles/test_circuit.dir/circuit/ac_test.cpp.o"
  "CMakeFiles/test_circuit.dir/circuit/ac_test.cpp.o.d"
  "CMakeFiles/test_circuit.dir/circuit/dc_test.cpp.o"
  "CMakeFiles/test_circuit.dir/circuit/dc_test.cpp.o.d"
  "CMakeFiles/test_circuit.dir/circuit/devices_test.cpp.o"
  "CMakeFiles/test_circuit.dir/circuit/devices_test.cpp.o.d"
  "CMakeFiles/test_circuit.dir/circuit/matrix_test.cpp.o"
  "CMakeFiles/test_circuit.dir/circuit/matrix_test.cpp.o.d"
  "CMakeFiles/test_circuit.dir/circuit/netlist_parser_test.cpp.o"
  "CMakeFiles/test_circuit.dir/circuit/netlist_parser_test.cpp.o.d"
  "CMakeFiles/test_circuit.dir/circuit/netlist_writer_test.cpp.o"
  "CMakeFiles/test_circuit.dir/circuit/netlist_writer_test.cpp.o.d"
  "CMakeFiles/test_circuit.dir/circuit/transient_accuracy_test.cpp.o"
  "CMakeFiles/test_circuit.dir/circuit/transient_accuracy_test.cpp.o.d"
  "CMakeFiles/test_circuit.dir/circuit/transient_test.cpp.o"
  "CMakeFiles/test_circuit.dir/circuit/transient_test.cpp.o.d"
  "CMakeFiles/test_circuit.dir/circuit/waveform_test.cpp.o"
  "CMakeFiles/test_circuit.dir/circuit/waveform_test.cpp.o.d"
  "test_circuit"
  "test_circuit.pdb"
  "test_circuit[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_circuit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
