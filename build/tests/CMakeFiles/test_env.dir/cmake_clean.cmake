file(REMOVE_RECURSE
  "CMakeFiles/test_env.dir/env/light_trace_test.cpp.o"
  "CMakeFiles/test_env.dir/env/light_trace_test.cpp.o.d"
  "CMakeFiles/test_env.dir/env/profiles_test.cpp.o"
  "CMakeFiles/test_env.dir/env/profiles_test.cpp.o.d"
  "CMakeFiles/test_env.dir/env/solar_test.cpp.o"
  "CMakeFiles/test_env.dir/env/solar_test.cpp.o.d"
  "test_env"
  "test_env.pdb"
  "test_env[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_env.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
