# Empty compiler generated dependencies file for test_mppt.
# This may be replaced when dependencies are built.
