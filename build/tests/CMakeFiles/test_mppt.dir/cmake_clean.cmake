file(REMOVE_RECURSE
  "CMakeFiles/test_mppt.dir/mppt/baselines_test.cpp.o"
  "CMakeFiles/test_mppt.dir/mppt/baselines_test.cpp.o.d"
  "CMakeFiles/test_mppt.dir/mppt/focv_controller_test.cpp.o"
  "CMakeFiles/test_mppt.dir/mppt/focv_controller_test.cpp.o.d"
  "test_mppt"
  "test_mppt.pdb"
  "test_mppt[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mppt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
