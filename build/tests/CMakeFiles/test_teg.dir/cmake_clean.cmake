file(REMOVE_RECURSE
  "CMakeFiles/test_teg.dir/teg/teg_test.cpp.o"
  "CMakeFiles/test_teg.dir/teg/teg_test.cpp.o.d"
  "test_teg"
  "test_teg.pdb"
  "test_teg[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_teg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
