# Empty compiler generated dependencies file for test_teg.
# This may be replaced when dependencies are built.
