# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_circuit[1]_include.cmake")
include("/root/repo/build/tests/test_pv[1]_include.cmake")
include("/root/repo/build/tests/test_env[1]_include.cmake")
include("/root/repo/build/tests/test_analog[1]_include.cmake")
include("/root/repo/build/tests/test_mppt[1]_include.cmake")
include("/root/repo/build/tests/test_power[1]_include.cmake")
include("/root/repo/build/tests/test_node[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_teg[1]_include.cmake")
include("/root/repo/build/tests/test_analysis[1]_include.cmake")
include("/root/repo/build/tests/test_repro[1]_include.cmake")
