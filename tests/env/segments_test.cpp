#include "env/segments.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <vector>

namespace focv::env {
namespace {

SegmentationOptions band(double ratio) {
  SegmentationOptions o;
  o.ratio_band = ratio;
  return o;
}

TEST(Segments, ConstantSeriesIsOneSegment) {
  const std::vector<double> v(100, 250.0);
  const std::vector<Segment> segs = segment_series(v, v.size(), band(1.35));
  ASSERT_EQ(segs.size(), 1u);
  EXPECT_EQ(segs[0].first, 0u);
  EXPECT_EQ(segs[0].last, 100u);
  EXPECT_DOUBLE_EQ(segs[0].min_value, 250.0);
  EXPECT_DOUBLE_EQ(segs[0].max_value, 250.0);
  EXPECT_FALSE(segs[0].dark);
}

TEST(Segments, CoverageIsExactAndOrdered) {
  // A ramp through several e-folds: every step index must be covered by
  // exactly one segment, in order, regardless of how the band splits it.
  std::vector<double> v;
  for (int i = 0; i < 500; ++i) v.push_back(10.0 * std::exp(0.01 * i));
  const std::vector<Segment> segs = segment_series(v, v.size(), band(1.35));
  ASSERT_FALSE(segs.empty());
  std::size_t expect_first = 0;
  for (const Segment& s : segs) {
    EXPECT_EQ(s.first, expect_first);
    EXPECT_GT(s.last, s.first);
    expect_first = s.last;
  }
  EXPECT_EQ(expect_first, v.size());
}

TEST(Segments, RatioBandIsRespected) {
  std::vector<double> v;
  for (int i = 0; i < 1000; ++i) v.push_back(50.0 * std::exp(0.004 * i));
  const SegmentationOptions o = band(1.35);
  for (const Segment& s : segment_series(v, v.size(), o)) {
    if (s.dark) continue;
    EXPECT_LE(s.max_value, o.ratio_band * s.min_value * (1.0 + 1e-12));
  }
}

TEST(Segments, DarkRunsMergeBelowFloor) {
  // Values under the floor form one dark segment even across huge
  // ratios; the lit neighbours stay separate.
  std::vector<double> v = {300.0, 300.0, 1e-6, 1e-3, 0.04, 300.0, 300.0};
  const std::vector<Segment> segs = segment_series(v, v.size(), band(1.35));
  ASSERT_EQ(segs.size(), 3u);
  EXPECT_FALSE(segs[0].dark);
  EXPECT_TRUE(segs[1].dark);
  EXPECT_EQ(segs[1].first, 2u);
  EXPECT_EQ(segs[1].last, 5u);
  EXPECT_FALSE(segs[2].dark);
}

TEST(Segments, StepJumpSplitsSegment) {
  std::vector<double> v(10, 200.0);
  v.insert(v.end(), 10, 500.0);
  const std::vector<Segment> segs = segment_series(v, v.size(), band(1.35));
  ASSERT_EQ(segs.size(), 2u);
  EXPECT_EQ(segs[0].last, 10u);
  EXPECT_DOUBLE_EQ(segs[0].max_value, 200.0);
  EXPECT_DOUBLE_EQ(segs[1].min_value, 500.0);
}

TEST(Segments, CountShorterThanSeriesIsHonoured) {
  // The engine passes n-1 steps for an n-sample trace: the last sample
  // must not leak into any segment.
  const std::vector<double> v = {100.0, 100.0, 100.0, 9999.0};
  const std::vector<Segment> segs = segment_series(v, v.size() - 1, band(1.35));
  ASSERT_EQ(segs.size(), 1u);
  EXPECT_EQ(segs[0].last, 3u);
  EXPECT_DOUBLE_EQ(segs[0].max_value, 100.0);
}

TEST(Segments, EmptySeries) {
  const std::vector<double> v;
  EXPECT_TRUE(segment_series(v, 0, band(1.35)).empty());
}

}  // namespace
}  // namespace focv::env
