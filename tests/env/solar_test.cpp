#include "env/solar.hpp"

#include <gtest/gtest.h>

#include "common/require.hpp"

namespace focv::env {
namespace {

TEST(Solar, ElevationBounded) {
  SolarConfig cfg;
  for (double t = 0; t < 86400; t += 600) {
    const double s = solar_elevation_sin(cfg, t);
    EXPECT_GE(s, -1.0);
    EXPECT_LE(s, 1.0);
  }
}

TEST(Solar, NoonIsHighestMidnightLowest) {
  SolarConfig cfg;
  const double noon = solar_elevation_sin(cfg, 43200);
  const double midnight = solar_elevation_sin(cfg, 0);
  EXPECT_GT(noon, 0.0);
  EXPECT_LT(midnight, 0.0);
  EXPECT_GT(noon, solar_elevation_sin(cfg, 30000));
}

TEST(Solar, SunriseBeforeSunset) {
  SolarConfig cfg;
  const double rise = sunrise_time(cfg);
  const double set = sunset_time(cfg);
  ASSERT_GT(rise, 0.0);
  ASSERT_GT(set, 0.0);
  EXPECT_LT(rise, 43200.0);
  EXPECT_GT(set, 43200.0);
}

TEST(Solar, SummerDaysLongerThanWinter) {
  SolarConfig summer;
  summer.day_of_year = 172;  // ~June 21
  SolarConfig winter;
  winter.day_of_year = 355;  // ~December 21
  const double summer_len = sunset_time(summer) - sunrise_time(summer);
  const double winter_len = sunset_time(winter) - sunrise_time(winter);
  EXPECT_GT(summer_len, winter_len + 3600.0);
}

TEST(Solar, ClearSkyZeroAtNightPositiveAtNoon) {
  SolarConfig cfg;
  EXPECT_DOUBLE_EQ(clear_sky_illuminance(cfg, 0.0), 0.0);
  const double noon = clear_sky_illuminance(cfg, 43200);
  EXPECT_GT(noon, 20000.0);
  EXPECT_LT(noon, 130000.0);
}

TEST(Solar, TwilightIsDim) {
  SolarConfig cfg;
  const double rise = sunrise_time(cfg);
  const double just_after = clear_sky_illuminance(cfg, rise + 300.0);
  EXPECT_GT(just_after, 0.0);
  EXPECT_LT(just_after, 10000.0);
}

TEST(Solar, RejectsBadDayOfYear) {
  SolarConfig cfg;
  cfg.day_of_year = 0;
  EXPECT_THROW(solar_elevation_sin(cfg, 0.0), PreconditionError);
}

}  // namespace
}  // namespace focv::env
