#include "env/light_trace.hpp"

#include <cstdio>
#include <filesystem>

#include <gtest/gtest.h>

#include "common/csv.hpp"
#include "common/require.hpp"
#include "pv/cell_library.hpp"

namespace focv::env {
namespace {

TEST(LightTrace, AppendRequiresIncreasingTime) {
  LightTrace trace;
  trace.append(0.0, 100.0, 0.0);
  trace.append(1.0, 100.0, 0.0);
  EXPECT_THROW(trace.append(1.0, 100.0, 0.0), PreconditionError);
  EXPECT_THROW(trace.append(0.5, 100.0, 0.0), PreconditionError);
}

TEST(LightTrace, RejectsNegativeIlluminance) {
  LightTrace trace;
  EXPECT_THROW(trace.append(0.0, -1.0, 0.0), PreconditionError);
  EXPECT_THROW(trace.append(0.0, 0.0, -1.0), PreconditionError);
}

TEST(LightTrace, InterpolatesBetweenSamples) {
  LightTrace trace;
  trace.append(0.0, 100.0, 0.0);
  trace.append(10.0, 200.0, 50.0);
  const LightSample s = trace.at(5.0);
  EXPECT_DOUBLE_EQ(s.artificial_lux, 150.0);
  EXPECT_DOUBLE_EQ(s.daylight_lux, 25.0);
  EXPECT_DOUBLE_EQ(s.total_lux(), 175.0);
  // Clamped ends.
  EXPECT_DOUBLE_EQ(trace.at(-1.0).artificial_lux, 100.0);
  EXPECT_DOUBLE_EQ(trace.at(99.0).artificial_lux, 200.0);
}

TEST(LightTrace, EquivalentLuxUsesDaylightRatio) {
  LightTrace trace;
  trace.append(0.0, 100.0, 200.0);
  const auto& cell = pv::sanyo_am1815();
  const auto eq = trace.equivalent_lux(cell);
  ASSERT_EQ(eq.size(), 1u);
  EXPECT_NEAR(eq[0], 100.0 + cell.params().daylight_ratio * 200.0, 1e-9);
}

TEST(LightTrace, VocSeriesZeroInDark) {
  LightTrace trace;
  trace.append(0.0, 0.0, 0.0);
  trace.append(1.0, 500.0, 0.0);
  const auto voc = trace.voc_series(pv::sanyo_am1815(), 300.15);
  ASSERT_EQ(voc.size(), 2u);
  EXPECT_DOUBLE_EQ(voc[0], 0.0);
  EXPECT_GT(voc[1], 4.5);
}

TEST(LightTrace, CsvExportRoundTrips) {
  LightTrace trace;
  trace.append(0.0, 10.0, 20.0);
  trace.append(1.0, 30.0, 40.0);
  const std::string path =
      (std::filesystem::temp_directory_path() / "focv_trace.csv").string();
  trace.write_csv(path);
  const CsvTable table = read_csv(path);
  EXPECT_EQ(table.rows.size(), 2u);
  EXPECT_DOUBLE_EQ(table.column("artificial_lux")[1], 30.0);
  std::remove(path.c_str());
}

TEST(LightTrace, DurationAndEmpty) {
  LightTrace trace;
  EXPECT_TRUE(trace.empty());
  EXPECT_DOUBLE_EQ(trace.duration(), 0.0);
  trace.append(5.0, 1.0, 0.0);
  trace.append(15.0, 1.0, 0.0);
  EXPECT_DOUBLE_EQ(trace.duration(), 10.0);
}

TEST(LightTrace, ScaledScalesEachChannelIndependently) {
  LightTrace trace;
  trace.append(0.0, 100.0, 1000.0);
  trace.append(1.0, 200.0, 0.0);
  const LightTrace dim = trace.scaled(0.5, 0.1);
  ASSERT_EQ(dim.size(), trace.size());
  EXPECT_EQ(dim.time(), trace.time());
  EXPECT_NEAR(dim.artificial_lux()[0], 50.0, 1e-12);
  EXPECT_NEAR(dim.daylight_lux()[0], 100.0, 1e-12);
  EXPECT_NEAR(dim.artificial_lux()[1], 100.0, 1e-12);
  EXPECT_NEAR(dim.daylight_lux()[1], 0.0, 1e-12);
  // Zero factors are allowed (kill a channel), negatives are not.
  EXPECT_NO_THROW(trace.scaled(0.0, 0.0));
  EXPECT_THROW(trace.scaled(-0.1, 1.0), PreconditionError);
  EXPECT_THROW(trace.scaled(1.0, -0.1), PreconditionError);
}

}  // namespace
}  // namespace focv::env
