#include "env/profiles.hpp"

#include <gtest/gtest.h>

#include "common/require.hpp"

namespace focv::env {
namespace {

TEST(Profiles, DeterministicForSameSeed) {
  const LightTrace a = office_desk_mixed();
  const LightTrace b = office_desk_mixed();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); i += 997) {
    EXPECT_DOUBLE_EQ(a.artificial_lux()[i], b.artificial_lux()[i]);
    EXPECT_DOUBLE_EQ(a.daylight_lux()[i], b.daylight_lux()[i]);
  }
}

TEST(Profiles, SeedsChangeTheTrace) {
  OfficeDayParams p1;
  p1.seed = 1;
  OfficeDayParams p2;
  p2.seed = 2;
  const LightTrace a = office_desk_mixed(p1);
  const LightTrace b = office_desk_mixed(p2);
  int differing = 0;
  for (std::size_t i = 0; i < a.size(); i += 601) {
    if (a.daylight_lux()[i] != b.daylight_lux()[i]) ++differing;
  }
  EXPECT_GT(differing, 10);
}

TEST(Profiles, OfficeDayStructure) {
  const LightTrace trace = office_desk_mixed();
  // Dark at 3 am.
  EXPECT_LT(trace.at(3 * 3600.0).total_lux(), 1.0);
  // Lit during working hours (artificial on).
  EXPECT_GT(trace.at(10 * 3600.0).artificial_lux, 300.0);
  // Lights off after the scheduled time.
  EXPECT_DOUBLE_EQ(trace.at(20 * 3600.0).artificial_lux, 0.0);
  // Daylight present around noon.
  EXPECT_GT(trace.at(12 * 3600.0).daylight_lux, 50.0);
}

TEST(Profiles, SundayBlindsClosedIsDim) {
  const LightTrace sunday = desk_sunday_blinds_closed();
  const LightTrace weekday = office_desk_mixed();
  // Noon daylight heavily attenuated by the blinds.
  EXPECT_LT(sunday.at(13 * 3600.0).daylight_lux,
            0.2 * weekday.at(13 * 3600.0).daylight_lux + 30.0);
}

TEST(Profiles, SemiMobileOutdoorLunchIsBright) {
  const LightTrace trace = semi_mobile_day();
  // Outdoor spell: orders of magnitude brighter than the lab.
  const double lunch = trace.at(12.8 * 3600.0).total_lux();
  const double lab = trace.at(10 * 3600.0).total_lux();
  EXPECT_GT(lunch, 2000.0);
  EXPECT_GT(lunch, 2.0 * lab);
  // Evening at home: modest artificial light.
  EXPECT_GT(trace.at(20 * 3600.0).artificial_lux, 50.0);
  // Night: dark.
  EXPECT_LT(trace.at(23.8 * 3600.0).total_lux(), 1.0);
}

TEST(Profiles, OutdoorDayPeaksMidday) {
  const LightTrace trace = outdoor_day();
  const double noon = trace.at(12.5 * 3600.0).daylight_lux;
  const double morning = trace.at(7 * 3600.0).daylight_lux;
  EXPECT_GT(noon, morning);
  EXPECT_GT(noon, 5000.0);
}

TEST(Profiles, ConstantAndStepBuilders) {
  const LightTrace c = constant_light(400.0, 100.0, 60.0, 1.0);
  EXPECT_EQ(c.size(), 61u);
  EXPECT_DOUBLE_EQ(c.at(30.0).artificial_lux, 400.0);
  const LightTrace s = step_light(100.0, 1000.0, 30.0, 60.0, 1.0);
  EXPECT_DOUBLE_EQ(s.at(10.0).artificial_lux, 100.0);
  EXPECT_DOUBLE_EQ(s.at(45.0).artificial_lux, 1000.0);
}

TEST(Profiles, RejectBadSamplePeriod) {
  OfficeDayParams p;
  p.sample_period = 0.0;
  EXPECT_THROW(office_desk_mixed(p), PreconditionError);
  EXPECT_THROW(constant_light(1, 1, 10, 0.0), PreconditionError);
}

}  // namespace
}  // namespace focv::env
