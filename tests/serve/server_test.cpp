// End-to-end tests of the focv-serve daemon over real loopback sockets:
// the byte-determinism contract across worker counts and batching modes,
// single-flight environment warm-up, overload shedding, deadline expiry
// (and the serve.deadline_storm anomaly), and graceful drain on stop().
#include "serve/server.hpp"

#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/flight.hpp"
#include "obs/obs.hpp"
#include "serve/client.hpp"
#include "serve/json.hpp"
#include "serve/protocol.hpp"

namespace focv::serve {
namespace {

/// Start a server on an ephemeral port or fail the test.
std::unique_ptr<Server> start_server(ServerOptions options) {
  auto server = std::make_unique<Server>(std::move(options));
  std::string error;
  EXPECT_TRUE(server->start(error)) << error;
  return server;
}

std::string ask(std::uint16_t port, const std::string& request) {
  Client client;
  std::string error;
  EXPECT_TRUE(client.connect(port, error)) << error;
  std::string response;
  EXPECT_TRUE(client.request(request, response)) << request;
  return response;
}

std::string error_code(const std::string& response) {
  Json parsed;
  if (!Json::parse(response, parsed)) return "<unparseable>";
  const Json* err = parsed.find("error");
  return err != nullptr ? err->string_or("code", "") : "";
}

// The determinism contract: identical request JSON -> byte-identical
// response JSON, independent of worker count, batching, and cache state
// (cold compute vs cached replay). deadline_ms is excluded from the
// canonical identity, so a replay with a different deadline must also
// match byte-for-byte.
TEST(ServeServer, ByteDeterminismAcrossJobsAndBatching) {
  ServerOptions serial;
  serial.jobs = 1;
  serial.batching = false;
  ServerOptions parallel;
  parallel.jobs = 4;
  parallel.batching = true;
  parallel.max_batch = 4;
  auto server_a = start_server(serial);
  auto server_b = start_server(parallel);

  const std::vector<std::string> requests = {
      R"({"op":"ping","id":1})",
      R"({"op":"catalog","id":2})",
      R"({"op":"sizing","id":3,"env":"office"})",
      R"({"op":"sizing","id":4,"env":"office","spec":"fixed[vout=1.8]","report_period_s":120})",
      R"({"op":"sweep","id":5,"env":"office","specs":["focv","fixed"]})",
      R"({"op":"fleet","id":6,"nodes":32,"seed":7})",
      // Errors are part of the surface and equally deterministic.
      R"({"op":"sizing","id":7,"env":"attic"})",
      R"({"op":"sizing","id":8,"env":"office","spec":"focv[bogus=1]"})",
  };
  for (const std::string& request : requests) {
    const std::string a_cold = ask(server_a->port(), request);
    const std::string b_cold = ask(server_b->port(), request);
    EXPECT_EQ(a_cold, b_cold) << request;
    // Replay: the second answer comes from the response cache (or a
    // fresh compute for uncacheable errors) and must not differ.
    const std::string a_warm = ask(server_a->port(), request);
    EXPECT_EQ(a_cold, a_warm) << request;
  }

  // Same query, different deadline: deadline_ms is outside the
  // canonical identity, so the payload bytes must match.
  const std::string plain = ask(server_a->port(), R"({"op":"sizing","id":3,"env":"office"})");
  const std::string deadlined =
      ask(server_a->port(), R"({"op":"sizing","id":3,"env":"office","deadline_ms":60000})");
  EXPECT_EQ(plain, deadlined);
}

// Satellite: two (here eight) simultaneous first-queries for the same
// (spec, env) must not duplicate the CurveCache / PreparedTrace build
// or race — the env warms exactly once and everyone gets the same
// bytes.
TEST(ServeServer, ConcurrentColdWarmupIsSingleFlight) {
  ServerOptions options;
  options.jobs = 4;
  auto server = start_server(options);

  constexpr int kThreads = 8;
  std::vector<std::string> responses(kThreads);
  {
    std::vector<std::thread> threads;
    for (int i = 0; i < kThreads; ++i) {
      threads.emplace_back([&, i] {
        responses[static_cast<std::size_t>(i)] =
            ask(server->port(), R"({"op":"sizing","id":9,"env":"semi_mobile"})");
      });
    }
    for (std::thread& t : threads) t.join();
  }
  for (int i = 1; i < kThreads; ++i) {
    EXPECT_EQ(responses[0], responses[static_cast<std::size_t>(i)]);
  }
  Json parsed;
  ASSERT_TRUE(Json::parse(responses[0], parsed)) << responses[0];
  EXPECT_TRUE(parsed.bool_or("ok", false)) << responses[0];
  EXPECT_EQ(server->session().warm_builds(), 1u);
}

// Admission control: with queue_depth=2 and a single busy worker, the
// third unanswered request in the system is shed with `overloaded`.
TEST(ServeServer, OverloadShedsBeyondQueueDepth) {
  ServerOptions options;
  options.jobs = 1;
  options.queue_depth = 2;
  options.session.enable_test_ops = true;
  auto server = start_server(options);

  Client client;
  std::string error;
  ASSERT_TRUE(client.connect(server->port(), error)) << error;
  // Occupy the worker, then give the dispatcher time to hand it over so
  // the burst below races nothing.
  ASSERT_TRUE(client.send(R"({"op":"burn","id":0,"ms":400})"));
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  constexpr int kBurst = 5;
  for (int i = 1; i <= kBurst; ++i) {
    ASSERT_TRUE(client.send(R"({"op":"burn","id":)" + std::to_string(i) + R"(,"ms":10})"));
  }
  int ok = 0;
  int overloaded = 0;
  std::string response;
  for (int i = 0; i < kBurst + 1; ++i) {
    ASSERT_TRUE(client.recv(response));
    Json parsed;
    ASSERT_TRUE(Json::parse(response, parsed)) << response;
    if (parsed.bool_or("ok", false)) {
      ++ok;
    } else {
      EXPECT_EQ(error_code(response), errc::kOverloaded) << response;
      ++overloaded;
    }
  }
  // Admitted: the 400 ms burn plus one of the burst; the rest shed.
  EXPECT_EQ(ok, 2);
  EXPECT_EQ(overloaded, kBurst - 1);
}

// Deadline handling plus the flight-recorder satellite: requests whose
// deadline expired in the queue come back `deadline_exceeded`, and once
// storm_threshold of them land inside the window the server fires the
// serve.deadline_storm anomaly, which dumps the armed flight recorder.
TEST(ServeServer, DeadlineStormFiresAnomalyAndFlightDump) {
  obs::ScopedEnable telemetry;
  obs::arm_flight({/*capacity=*/64, /*path=*/"serve_storm_flight.json", /*max_dumps=*/8});
  const int dumps_before = obs::flight().dumps();

  ServerOptions options;
  options.jobs = 1;
  options.storm_threshold = 4;
  options.session.enable_test_ops = true;
  auto server = start_server(options);

  Client client;
  std::string error;
  ASSERT_TRUE(client.connect(server->port(), error)) << error;
  // deadline_ms = 1e-4 (100 ns) is over before the dispatcher can ever
  // drain the queue, so every request expires deterministically.
  constexpr int kRequests = 6;
  for (int i = 0; i < kRequests; ++i) {
    ASSERT_TRUE(client.send(R"({"op":"burn","id":)" + std::to_string(i) +
                            R"(,"ms":5,"deadline_ms":0.0001})"));
  }
  std::string response;
  for (int i = 0; i < kRequests; ++i) {
    ASSERT_TRUE(client.recv(response));
    EXPECT_EQ(error_code(response), errc::kDeadlineExceeded) << response;
  }
  // Edge-triggered: one dump for the whole storm, not one per expiry.
  EXPECT_EQ(obs::flight().dumps() - dumps_before, 1);

  server->stop();
  obs::disarm_flight();
  obs::reset_all();
  std::remove("serve_storm_flight.json");
}

// Graceful shutdown: stop() drains admitted work — the in-flight burn
// still gets its response before the connection is torn down — and a
// stopped server accepts no new connections.
TEST(ServeServer, StopDrainsInFlightWork) {
  ServerOptions options;
  options.jobs = 1;
  options.session.enable_test_ops = true;
  auto server = start_server(options);
  const std::uint16_t port = server->port();

  Client client;
  std::string error;
  ASSERT_TRUE(client.connect(port, error)) << error;
  ASSERT_TRUE(client.send(R"({"op":"burn","id":42,"ms":200})"));
  std::this_thread::sleep_for(std::chrono::milliseconds(50));  // let it be admitted

  server->stop();  // blocks until the queue and in-flight work drained

  std::string response;
  ASSERT_TRUE(client.recv(response));
  Json parsed;
  ASSERT_TRUE(Json::parse(response, parsed)) << response;
  EXPECT_TRUE(parsed.bool_or("ok", false)) << response;
  EXPECT_EQ(parsed.find("id")->dump(), "42");

  Client late;
  EXPECT_FALSE(late.connect(port, error));
}

// The shutdown op is loopback-trusted and off by default.
TEST(ServeServer, ShutdownOpGatedByOption) {
  auto server = start_server(ServerOptions{});
  const std::string refused = ask(server->port(), R"({"op":"shutdown","id":1})");
  EXPECT_EQ(error_code(refused), errc::kBadRequest) << refused;
  EXPECT_FALSE(server->stop_requested());

  ServerOptions trusted;
  trusted.allow_shutdown_op = true;
  auto server2 = start_server(trusted);
  const std::string accepted = ask(server2->port(), R"({"op":"shutdown","id":1})");
  Json parsed;
  ASSERT_TRUE(Json::parse(accepted, parsed)) << accepted;
  EXPECT_TRUE(parsed.bool_or("ok", false)) << accepted;
  EXPECT_TRUE(server2->stop_requested());
  server2->stop();
}

}  // namespace
}  // namespace focv::serve
