#include "serve/protocol.hpp"

#include <string>

#include <gtest/gtest.h>

#include "serve/json.hpp"
#include "serve/session.hpp"

namespace focv::serve {
namespace {

TEST(ServeFrame, HeaderRoundTripsBigEndian) {
  unsigned char header[4];
  encode_frame_header(0x01020304u, header);
  EXPECT_EQ(header[0], 0x01u);
  EXPECT_EQ(header[1], 0x02u);
  EXPECT_EQ(header[2], 0x03u);
  EXPECT_EQ(header[3], 0x04u);
  EXPECT_EQ(decode_frame_header(header), 0x01020304u);

  for (const std::uint32_t size : {0u, 1u, 255u, 1u << 16, kMaxRequestFrame}) {
    encode_frame_header(size, header);
    EXPECT_EQ(decode_frame_header(header), size);
  }
}

TEST(ServeFrame, EncodeFramePrependsHeader) {
  const std::string frame = encode_frame("{\"op\":\"ping\"}");
  ASSERT_EQ(frame.size(), 4u + 13u);
  EXPECT_EQ(static_cast<unsigned char>(frame[3]), 13u);
  EXPECT_EQ(frame.substr(4), "{\"op\":\"ping\"}");
}

TEST(ServeProtocol, ParseRequestAcceptsIdShapes) {
  Request request;
  std::string error;
  ASSERT_TRUE(parse_request("{\"op\":\"ping\",\"id\":7}", request, error));
  EXPECT_EQ(request.op, "ping");
  EXPECT_EQ(request.id_json, "7");

  ASSERT_TRUE(parse_request("{\"op\":\"ping\",\"id\":\"a-b\"}", request, error));
  EXPECT_EQ(request.id_json, "\"a-b\"");

  ASSERT_TRUE(parse_request("{\"op\":\"ping\"}", request, error));
  EXPECT_EQ(request.id_json, "null");

  ASSERT_TRUE(parse_request("{\"op\":\"sizing\",\"deadline_ms\":250}", request, error));
  EXPECT_DOUBLE_EQ(request.deadline_ms, 250.0);
}

// Malformed envelopes must come back as complete error payloads the
// reader can frame as-is.
TEST(ServeProtocol, ParseRequestRejectsWithStructuredErrors) {
  const struct {
    const char* payload;
    const char* code;
  } shapes[] = {
      {"{\"op\":", errc::kBadJson},
      {"[1,2,3]", errc::kBadRequest},
      {"{\"id\":1}", errc::kBadRequest},
      {"{\"op\":\"\",\"id\":1}", errc::kBadRequest},
      {"{\"op\":\"ping\",\"id\":{}}", errc::kBadRequest},
      {"{\"op\":\"ping\",\"deadline_ms\":-1}", errc::kBadRequest},
  };
  for (const auto& shape : shapes) {
    Request request;
    std::string error;
    ASSERT_FALSE(parse_request(shape.payload, request, error)) << shape.payload;
    Json response;
    ASSERT_TRUE(Json::parse(error, response)) << error;
    EXPECT_FALSE(response.bool_or("ok", true));
    const Json* err = response.find("error");
    ASSERT_NE(err, nullptr);
    EXPECT_EQ(err->string_or("code", ""), shape.code) << shape.payload;
    EXPECT_FALSE(err->string_or("message", "").empty());
  }
}

TEST(ServeProtocol, ResponseEnvelopes) {
  EXPECT_EQ(ok_response("7", "{\"pong\":true}"),
            "{\"schema\":\"focv-serve/v1\",\"id\":7,\"ok\":true,"
            "\"result\":{\"pong\":true}}");
  EXPECT_EQ(error_response("null", errc::kOverloaded, "full"),
            "{\"schema\":\"focv-serve/v1\",\"id\":null,\"ok\":false,"
            "\"error\":{\"code\":\"overloaded\",\"message\":\"full\"}}");
  // token / hint appear only when non-empty.
  const std::string with_hint =
      error_response("1", errc::kBadSpec, "bad \"x\"", "x", "try the catalog");
  EXPECT_NE(with_hint.find("\"token\":\"x\""), std::string::npos);
  EXPECT_NE(with_hint.find("\"hint\":\"try the catalog\""), std::string::npos);
}

TEST(ServeProtocol, OffendingTokenPicksTokenAfterSpec) {
  EXPECT_EQ(offending_token("mppt spec \"focv[k=oops]\": value \"oops\" is not a number"),
            "oops");
  // Not the trailing controller name: the token right after the spec.
  EXPECT_EQ(
      offending_token(
          "mppt spec \"focv[bogus=1]\": unknown parameter \"bogus\" for \"focv\""),
      "bogus");
  // A single quoted token (the whole spec) is better than nothing.
  EXPECT_EQ(offending_token("unknown controller \"zap\""), "zap");
  EXPECT_EQ(offending_token("no quotes at all"), "");
}

// Satellite: a malformed controller spec arriving over the wire must
// surface as a structured bad_spec error — code, offending token, and a
// catalog hint — never a worker death. Four distinct malformed shapes.
TEST(ServeProtocol, MalformedSpecsMapToStructuredErrors) {
  SessionState session;
  const struct {
    const char* spec;
    const char* token_fragment;  ///< expected inside error.token
  } shapes[] = {
      {"zap", "zap"},                // unknown controller name
      {"focv[k=oops]", "k"},         // non-numeric parameter value
      {"focv[bogus=1]", "bogus"},    // unknown parameter key
      {"focv[k=0.7", "focv[k=0.7"},  // unterminated parameter list
      {"focv[k=99]", "k"},           // value outside the declared range
  };
  for (const auto& shape : shapes) {
    Request request;
    std::string error;
    const std::string payload =
        std::string("{\"op\":\"sizing\",\"id\":1,\"env\":\"office\",\"spec\":\"") +
        shape.spec + "\"}";
    ASSERT_TRUE(parse_request(payload, request, error)) << payload;
    CanonicalRequest canon;
    ASSERT_FALSE(session.canonicalize(request, canon, error)) << shape.spec;

    Json response;
    ASSERT_TRUE(Json::parse(error, response)) << error;
    EXPECT_FALSE(response.bool_or("ok", true));
    const Json* err = response.find("error");
    ASSERT_NE(err, nullptr) << shape.spec;
    EXPECT_EQ(err->string_or("code", ""), errc::kBadSpec) << shape.spec;
    EXPECT_FALSE(err->string_or("message", "").empty());
    EXPECT_NE(err->string_or("token", "").find(shape.token_fragment), std::string::npos)
        << shape.spec << " token=" << err->string_or("token", "");
    // The hint names the registered controllers and the catalog op.
    const std::string hint = err->string_or("hint", "");
    EXPECT_NE(hint.find("focv"), std::string::npos) << hint;
    EXPECT_NE(hint.find("catalog"), std::string::npos) << hint;
  }
}

TEST(ServeProtocol, SpecCatalogHintListsControllers) {
  SessionState session;  // registers the paper controller
  const std::string hint = spec_catalog_hint();
  for (const char* name : {"focv", "fixed", "pando", "inccond"}) {
    EXPECT_NE(hint.find(name), std::string::npos) << hint;
  }
}

}  // namespace
}  // namespace focv::serve
