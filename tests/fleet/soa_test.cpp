// Equivalence and determinism contract of the struct-of-arrays fleet
// engine (fleet/soa.hpp) against the per-node engine it accelerates.
#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "env/profiles.hpp"
#include "fleet/fleet.hpp"
#include "node/harvester_node.hpp"
#include "obs/obs.hpp"
#include "pv/cell_library.hpp"

namespace focv::fleet {
namespace {

FleetOptions jobs1() {
  FleetOptions opt;
  opt.jobs = 1;
  return opt;
}

/// Mixed-policy fleet over the paper's two measured day shapes. The
/// roster deliberately mixes batchable axes (focv closed form, pilot
/// memoryless) with a per-node fallback axis (direct tracks the store).
FleetSpec day_spec(std::size_t nodes, bool with_fallback = true) {
  FleetSpec spec;
  spec.node_count = nodes;
  spec.root_seed = 2026;
  spec.chunk_size = 64;
  spec.use_cell(pv::sanyo_am1815());
  spec.base.stepper = node::Stepper::kEvent;
  spec.base.storage.initial_voltage = 2.4;
  spec.base.load.report_period = 120.0;
  env::OfficeDayParams office;
  office.duration = 6.0 * 3600.0;
  spec.add_environment("office", env::office_desk_mixed(office), 0.6);
  spec.add_environment("sunday", env::desk_sunday_blinds_closed(7), 0.4);
  if (with_fallback) {
    spec.add_policy("focv", 0.6);
    spec.add_policy("pilot", 0.2);
    spec.add_policy("direct", 0.2);
  } else {
    spec.add_policy("focv", 0.7);
    spec.add_policy("pilot", 0.2);
    spec.add_policy("fixed", 0.1);
  }
  return spec;
}

double rel_err(double a, double b) {
  const double scale = std::max(std::abs(a), std::abs(b));
  if (scale == 0.0) return 0.0;
  return std::abs(a - b) / scale;
}

TEST(FleetSoa, MatchesPerNodeEngineWithinEventContract) {
  FleetSpec per_node = day_spec(96);
  FleetSpec soa = per_node;
  soa.engine = FleetEngine::kSoa;

  const FleetReport a = run_fleet(per_node, jobs1());
  const FleetReport b = run_fleet(soa, jobs1());

  ASSERT_EQ(a.nodes_ok, b.nodes_ok);
  ASSERT_EQ(a.nodes_failed, 0u);
  // Fleet-level energy totals stay inside the event stepper's 0.1 %
  // equivalence band.
  EXPECT_LT(rel_err(a.harvested_j, b.harvested_j), 1e-3);
  EXPECT_LT(rel_err(a.delivered_j, b.delivered_j), 1e-3);
  EXPECT_LT(rel_err(a.ideal_mpp_j, b.ideal_mpp_j), 1e-3);
  EXPECT_LT(rel_err(a.load_served_j, b.load_served_j), 1e-3);
  EXPECT_LT(rel_err(a.net_j, b.net_j), 2e-3);
  EXPECT_LT(rel_err(a.overhead_j, b.overhead_j), 1e-3);
  EXPECT_LT(std::abs(a.efficiency_sum - b.efficiency_sum),
            1e-3 * static_cast<double>(a.nodes_ok));

  // Per-axis totals hold the same bound (nothing hides in mixture
  // cancellation), and the fallback axis is not merely close — those
  // nodes run the per-node engine inside the SoA chunks, byte for byte.
  ASSERT_EQ(a.policies.size(), b.policies.size());
  for (std::size_t i = 0; i < a.policies.size(); ++i) {
    const PolicyAggregate& pa = a.policies[i];
    const PolicyAggregate& pb = b.policies[i];
    ASSERT_EQ(pa.nodes, pb.nodes);
    EXPECT_LT(rel_err(pa.harvested_j, pb.harvested_j), 1e-3) << pa.policy;
    EXPECT_LT(std::abs(pa.efficiency_sum - pb.efficiency_sum),
              1e-3 * static_cast<double>(pa.nodes) + 1e-12)
        << pa.policy;
    if (pa.policy == "direct") {
      EXPECT_DOUBLE_EQ(pa.harvested_j, pb.harvested_j);
      EXPECT_DOUBLE_EQ(pa.net_j, pb.net_j);
      EXPECT_DOUBLE_EQ(pa.efficiency_sum, pb.efficiency_sum);
    }
  }
}

TEST(FleetSoa, AllFallbackRosterIsByteIdenticalToPerNode) {
  // No batchable axis at all: the SoA engine must degrade to exactly
  // the per-node engine, not an approximation of it.
  FleetSpec per_node = day_spec(24);
  per_node.policies.clear();
  per_node.add_policy("direct", 0.5);
  per_node.add_policy("pando", 0.5);
  FleetSpec soa = per_node;
  soa.engine = FleetEngine::kSoa;

  const FleetReport a = run_fleet(per_node, jobs1());
  const FleetReport b = run_fleet(soa, jobs1());
  EXPECT_EQ(a.to_json(), b.to_json());
}

TEST(FleetSoa, TelemetryOnOffIsByteIdenticalAndCountsTheSweep) {
  // The observe-only contract at fleet scale: enabling focv::obs must
  // not perturb a single exported byte, while the SoA sweep's aggregate
  // counters report real work. The mixed roster exercises both the
  // batched axes and the per-node fallback axis under telemetry.
  FleetSpec spec = day_spec(96);
  spec.engine = FleetEngine::kSoa;
  const std::string off = run_fleet(spec, jobs1()).to_json();

  obs::reset_all();
  std::string on;
  {
    obs::ScopedEnable scoped;
    on = run_fleet(spec, jobs1()).to_json();
  }
  EXPECT_EQ(off, on);
  EXPECT_GT(obs::metrics().counter_value("fleet.soa.nodes_swept"), 0.0);
  EXPECT_GT(obs::metrics().counter_value("fleet.soa.intervals_swept"), 0.0);
  EXPECT_GT(obs::metrics().counter_value("fleet.soa.nodes_batched"), 0.0);
  EXPECT_GT(obs::metrics().counter_value("fleet.soa.nodes_fallback"), 0.0);
  EXPECT_GT(obs::metrics().counter_value("fleet.soa.plans_built"), 0.0);
  EXPECT_GT(obs::metrics().counter_value("sched.batch.builds"), 0.0);
  // Batched + fallback partitions the fleet exactly.
  EXPECT_EQ(obs::metrics().counter_value("fleet.soa.nodes_batched") +
                obs::metrics().counter_value("fleet.soa.nodes_fallback"),
            96.0);
  obs::reset_all();
}

TEST(FleetSoa, ByteIdenticalAcrossWorkerCountsBothTableModes) {
  for (const TableMode mode : {TableMode::kFloat, TableMode::kQuantized}) {
    FleetSpec spec = day_spec(10000, /*with_fallback=*/false);
    spec.chunk_size = 512;
    spec.engine = FleetEngine::kSoa;
    spec.table_mode = mode;

    FleetOptions threaded;
    threaded.jobs = 4;
    const FleetReport a = run_fleet(spec, jobs1());
    const FleetReport b = run_fleet(spec, threaded);
    EXPECT_EQ(a.to_json(), b.to_json())
        << "table_mode=" << (mode == TableMode::kQuantized ? "quantized" : "float");
    EXPECT_EQ(a.nodes_failed, 0u);
  }
}

TEST(FleetSoa, QuantizedTablesStayWithinAccuracyBound) {
  FleetSpec flt = day_spec(128, /*with_fallback=*/false);
  flt.engine = FleetEngine::kSoa;
  FleetSpec qnt = flt;
  qnt.table_mode = TableMode::kQuantized;

  const FleetReport a = run_fleet(flt, jobs1());
  const FleetReport b = run_fleet(qnt, jobs1());
  ASSERT_EQ(a.nodes_ok, b.nodes_ok);
  // uV / nW rounding on the table entries: far below the engine's own
  // 0.1 % contract.
  EXPECT_LT(rel_err(a.harvested_j, b.harvested_j), 1e-3);
  EXPECT_LT(rel_err(a.delivered_j, b.delivered_j), 1e-3);
  EXPECT_LT(rel_err(a.ideal_mpp_j, b.ideal_mpp_j), 1e-3);
  EXPECT_LT(rel_err(a.net_j, b.net_j), 2e-3);
}

}  // namespace
}  // namespace focv::fleet
