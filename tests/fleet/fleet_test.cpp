#include "fleet/fleet.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "common/require.hpp"
#include "env/profiles.hpp"
#include "node/harvester_node.hpp"
#include "pv/cell_library.hpp"

namespace focv::fleet {
namespace {

FleetOptions serial_options() {
  FleetOptions opt;
  opt.jobs = 1;
  return opt;
}

std::string slurp(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  std::ostringstream out;
  out << f.rdbuf();
  return out.str();
}

/// Small mixed fleet on short constant-light traces: fast, but still
/// exercising both environments, several policies and many chunks.
FleetSpec small_spec(std::size_t nodes) {
  FleetSpec spec;
  spec.node_count = nodes;
  spec.root_seed = 99;
  spec.chunk_size = 4;
  spec.use_cell(pv::sanyo_am1815());
  spec.add_environment("bright", env::constant_light(1200.0, 0.0, 3600.0), 0.6);
  spec.add_environment("dim", env::constant_light(180.0, 0.0, 3600.0), 0.4);
  spec.add_policy(MpptPolicy::kFocvSampleHold, 0.7);
  spec.add_policy(MpptPolicy::kPilotCellFocv, 0.15);
  spec.add_policy(MpptPolicy::kDirectConnection, 0.15);
  spec.base.storage.initial_voltage = 2.5;
  spec.base.load.report_period = 120.0;
  return spec;
}

TEST(FleetDraw, PureFunctionOfSpecAndIndex) {
  const FleetSpec spec = small_spec(32);
  const NodeDraw a = draw_node(spec, 7);
  const NodeDraw b = draw_node(spec, 7);
  EXPECT_EQ(a.seed, b.seed);
  EXPECT_EQ(a.env_index, b.env_index);
  EXPECT_EQ(a.policy_index, b.policy_index);
  EXPECT_EQ(a.attenuation, b.attenuation);
  EXPECT_EQ(a.cell_factor, b.cell_factor);
  EXPECT_EQ(a.divider_ratio, b.divider_ratio);
  EXPECT_EQ(a.report_period, b.report_period);
  EXPECT_EQ(a.burst_phase, b.burst_phase);

  // Execution-shape knobs (node_count, chunk_size) must not move draws.
  FleetSpec bigger = small_spec(32);
  bigger.node_count = 4096;
  bigger.chunk_size = 64;
  const NodeDraw c = draw_node(bigger, 7);
  EXPECT_EQ(a.seed, c.seed);
  EXPECT_EQ(a.attenuation, c.attenuation);
  EXPECT_EQ(a.burst_phase, c.burst_phase);

  // Distinct nodes get distinct streams.
  const NodeDraw d = draw_node(spec, 8);
  EXPECT_NE(a.seed, d.seed);
  EXPECT_NE(a.attenuation, d.attenuation);
}

TEST(FleetDraw, RespectsHeterogeneityRanges) {
  const FleetSpec spec = small_spec(64);
  const HeterogeneitySpec& h = spec.heterogeneity;
  for (std::size_t i = 0; i < spec.node_count; ++i) {
    const NodeDraw d = draw_node(spec, i);
    EXPECT_GE(d.attenuation, h.attenuation_min);
    EXPECT_LE(d.attenuation, h.attenuation_max);
    EXPECT_GT(d.cell_factor, 0.0);
    EXPECT_GT(d.divider_ratio, 0.0);
    EXPECT_GE(d.burst_phase, 0.0);
    EXPECT_LT(d.burst_phase, d.report_period);
    EXPECT_LT(d.env_index, spec.environments.size());
    EXPECT_LT(d.policy_index, spec.policies.size());
    const double jitter = spec.heterogeneity.load_period_jitter;
    EXPECT_GE(d.report_period, spec.base.load.report_period * (1.0 - jitter) - 1e-9);
    EXPECT_LE(d.report_period, spec.base.load.report_period * (1.0 + jitter) + 1e-9);
  }
}

TEST(FleetDraw, LockstepPhaseWhenRandomizationOff) {
  FleetSpec spec = small_spec(16);
  spec.heterogeneity.randomize_load_phase = false;
  for (std::size_t i = 0; i < spec.node_count; ++i) {
    EXPECT_EQ(draw_node(spec, i).burst_phase, 0.0);
  }
  // The phase draw is consumed either way: toggling the flag must not
  // shift any other draw.
  FleetSpec on = small_spec(16);
  EXPECT_EQ(draw_node(spec, 5).attenuation, draw_node(on, 5).attenuation);
  EXPECT_EQ(draw_node(spec, 5).report_period, draw_node(on, 5).report_period);
}

TEST(Fleet, SingleNodeFleetMatchesDirectSimulateNode) {
  FleetSpec spec = small_spec(1);
  const FleetReport fleet = run_fleet(spec, serial_options());

  const NodeDraw draw = draw_node(spec, 0);
  const node::NodeConfig config = materialize_node(spec, draw);
  const node::NodeReport direct =
      node::simulate_node(*spec.environments[draw.env_index].trace, config);

  ASSERT_EQ(fleet.nodes_ok, 1u);
  EXPECT_EQ(fleet.nodes_failed, 0u);
  EXPECT_EQ(fleet.harvested_j, direct.harvested_energy);
  EXPECT_EQ(fleet.delivered_j, direct.delivered_energy);
  EXPECT_EQ(fleet.overhead_j, direct.overhead_energy);
  EXPECT_EQ(fleet.load_served_j, direct.load_energy_served);
  EXPECT_EQ(fleet.ideal_mpp_j, direct.ideal_mpp_energy);
  EXPECT_EQ(fleet.net_j, direct.net_energy());
  EXPECT_EQ(fleet.steps, direct.steps);
  EXPECT_EQ(fleet.efficiency_sum, direct.tracking_efficiency());
  EXPECT_EQ(fleet.efficiency_min, fleet.efficiency_max);
}

TEST(Fleet, MaterializeAppliesTheDraw) {
  const FleetSpec spec = small_spec(8);
  const NodeDraw draw = draw_node(spec, 3);
  const node::NodeConfig config = materialize_node(spec, draw);
  EXPECT_EQ(config.lux_scale, draw.attenuation * draw.cell_factor);
  EXPECT_EQ(config.load.report_period, draw.report_period);
  EXPECT_EQ(config.load.burst_phase, draw.burst_phase);
  EXPECT_FALSE(config.record_traces);
  ASSERT_NE(config.cell_model, nullptr);
  ASSERT_NE(config.controller_prototype, nullptr);
}

TEST(Fleet, SpecStringPoliciesMatchEnumShimByteForByte) {
  // Same mixture, once through the registry spec strings and once
  // through the deprecated enum shim. Only the axis labels may differ
  // (canonical spec vs legacy snake_case); every simulated byte must
  // be identical once the labels are normalised.
  FleetSpec via_spec = small_spec(24);
  via_spec.policies.clear();
  via_spec.add_policy("focv", 0.7);
  via_spec.add_policy("pilot", 0.15);
  via_spec.add_policy("direct", 0.15);

  const FleetSpec via_enum = small_spec(24);  // enum mixture, same weights

  const FleetReport a = run_fleet(via_spec, serial_options());
  const FleetReport b = run_fleet(via_enum, serial_options());

  const auto replace_all = [](std::string s, const std::string& from,
                              const std::string& to) {
    for (std::size_t pos = s.find(from); pos != std::string::npos;
         pos = s.find(from, pos + to.size())) {
      s.replace(pos, from.size(), to);
    }
    return s;
  };
  std::string legacy_json = b.to_json();
  legacy_json = replace_all(legacy_json, "focv_sample_hold", "focv");
  legacy_json = replace_all(legacy_json, "pilot_cell_focv", "pilot");
  legacy_json = replace_all(legacy_json, "direct_connection", "direct");
  EXPECT_EQ(a.to_json(), legacy_json);
}

TEST(Fleet, SpecStringPolicyFailsFastOnBadSpec) {
  FleetSpec spec = small_spec(4);
  EXPECT_THROW(spec.add_policy("bogus"), mppt::SpecError);
  EXPECT_THROW(spec.add_policy("focv[stepp=1]"), mppt::SpecError);
  EXPECT_THROW(spec.add_policy("focv[k=2]"), mppt::SpecError);
}

TEST(Fleet, ByteIdenticalAcrossWorkerCounts) {
  const FleetSpec spec = small_spec(26);  // 7 chunks of 4: uneven tail

  const std::string dir = ::testing::TempDir();
  FleetOptions serial;
  serial.jobs = 1;
  serial.jsonl_path = dir + "/fleet_serial.jsonl";
  const FleetReport a = run_fleet(spec, serial);

  FleetOptions threaded;
  threaded.jobs = 8;
  threaded.jsonl_path = dir + "/fleet_threaded.jsonl";
  const FleetReport b = run_fleet(spec, threaded);

  EXPECT_EQ(a.to_json(), b.to_json());
  const std::string lines_a = slurp(serial.jsonl_path);
  const std::string lines_b = slurp(threaded.jsonl_path);
  EXPECT_FALSE(lines_a.empty());
  EXPECT_EQ(lines_a, lines_b);
  // Timing is machine-dependent and must stay out of the default export.
  EXPECT_EQ(a.to_json().find("wall_seconds"), std::string::npos);
  EXPECT_NE(a.to_json(true).find("wall_seconds"), std::string::npos);
}

TEST(Fleet, ChunkSharedCurveCacheDoesNotAlterResults) {
  // Same fleet, chunk_size 1 (every node gets a fresh cache) vs one big
  // chunk (every node shares one cache): bit-identical totals. Spreads
  // are zeroed so nodes in the same environment share identical grid
  // entries and the reuse is guaranteed, not probabilistic.
  FleetSpec fresh = small_spec(10);
  fresh.chunk_size = 1;
  fresh.heterogeneity.attenuation_min = 1.0;
  fresh.heterogeneity.attenuation_max = 1.0;
  fresh.heterogeneity.cell_tolerance_sigma = 0.0;
  FleetSpec shared = fresh;
  shared.chunk_size = 64;
  const FleetReport a = run_fleet(fresh, serial_options());
  const FleetReport b = run_fleet(shared, serial_options());
  EXPECT_EQ(a.harvested_j, b.harvested_j);
  EXPECT_EQ(a.net_j, b.net_j);
  EXPECT_EQ(a.efficiency_sum, b.efficiency_sum);
  EXPECT_EQ(a.steps, b.steps);
  // The shared cache solves each grid node once for the whole chunk.
  EXPECT_LT(b.model_evals, a.model_evals);
}

TEST(Fleet, AccountsEveryNodeExactlyOnce) {
  const FleetSpec spec = small_spec(26);
  const FleetReport r = run_fleet(spec, serial_options());
  EXPECT_EQ(r.nodes_ok + r.nodes_failed, 26u);
  std::uint64_t env_nodes = 0;
  for (const EnvironmentAggregate& e : r.environments) env_nodes += e.nodes;
  EXPECT_EQ(env_nodes, 26u);
  std::uint64_t policy_nodes = 0;
  for (const PolicyAggregate& p : r.policies) policy_nodes += p.nodes + p.failed;
  EXPECT_EQ(policy_nodes, 26u);
  EXPECT_EQ(r.efficiency_hist.total(), r.nodes_ok);
  EXPECT_EQ(r.net_energy_hist.total(), r.nodes_ok);
  EXPECT_EQ(r.downtime_hist.total(), r.nodes_ok);
}

TEST(Fleet, EnergyNeutralTracksStoreVoltage) {
  // Bright constant light: every store ends above its 1.8 V start.
  FleetSpec bright;
  bright.node_count = 6;
  bright.use_cell(pv::sanyo_am1815());
  bright.add_environment("bright", env::constant_light(2000.0, 0.0, 3600.0));
  bright.base.storage.initial_voltage = 1.9;
  bright.base.load.report_period = 120.0;
  const FleetReport sunny = run_fleet(bright, serial_options());
  EXPECT_EQ(sunny.energy_neutral_nodes, sunny.nodes_ok);
  EXPECT_EQ(sunny.energy_neutral_fraction(), 1.0);

  // Darkness: the load can only drain the store.
  FleetSpec dark = bright;
  dark.environments.clear();
  dark.add_environment("dark", env::constant_light(0.0, 0.0, 3600.0));
  const FleetReport night = run_fleet(dark, serial_options());
  EXPECT_EQ(night.energy_neutral_nodes, 0u);
}

TEST(Fleet, LoadConcurrencyPhaseJitterBreaksLockstep) {
  FleetSpec spec = small_spec(40);
  spec.heterogeneity.randomize_load_phase = false;
  spec.heterogeneity.load_period_jitter = 0.0;
  const LoadConcurrency lockstep = analyze_load_concurrency(spec);
  // Identical periods and zero phase: every node bursts at once.
  EXPECT_EQ(lockstep.peak_concurrent_tx, 40u);

  spec.heterogeneity.randomize_load_phase = true;
  const LoadConcurrency spread = analyze_load_concurrency(spec);
  EXPECT_GE(spread.peak_concurrent_tx, 1u);
  EXPECT_LT(spread.peak_concurrent_tx, 40u);
  EXPECT_LT(spread.peak_load_w, lockstep.peak_load_w);
  EXPECT_NEAR(spread.average_load_w, lockstep.average_load_w,
              1e-6 * lockstep.average_load_w);
}

TEST(Fleet, RejectsInvalidSpecs) {
  FleetSpec no_cell = small_spec(4);
  no_cell.cell = nullptr;
  EXPECT_THROW((void)run_fleet(no_cell, serial_options()), PreconditionError);

  FleetSpec no_env = small_spec(4);
  no_env.environments.clear();
  EXPECT_THROW((void)run_fleet(no_env, serial_options()), PreconditionError);

  FleetSpec bad_weight = small_spec(4);
  bad_weight.environments[0].weight = 0.0;
  EXPECT_THROW((void)run_fleet(bad_weight, serial_options()), PreconditionError);

  FleetSpec bad_att = small_spec(4);
  bad_att.heterogeneity.attenuation_min = 0.0;
  EXPECT_THROW((void)draw_node(bad_att, 0), PreconditionError);
}

TEST(FixedHistogram, ClampsOutOfRangeIntoEndBins) {
  FixedHistogram h({0.0, 1.0, 2.0});
  h.observe(-5.0);
  h.observe(0.5);
  h.observe(1.5);
  h.observe(99.0);
  EXPECT_EQ(h.counts[0], 2u);
  EXPECT_EQ(h.counts[1], 2u);
  EXPECT_EQ(h.total(), 4u);

  FixedHistogram other({0.0, 1.0, 2.0});
  other.observe(0.1);
  h.merge(other);
  EXPECT_EQ(h.counts[0], 3u);
  EXPECT_EQ(h.total(), 5u);

  FixedHistogram mismatched({0.0, 1.0});
  EXPECT_THROW(h.merge(mismatched), PreconditionError);
  EXPECT_THROW(FixedHistogram({1.0, 1.0}), PreconditionError);
}

TEST(Fleet, ProgressCallbackCoversEveryChunk) {
  const FleetSpec spec = small_spec(10);  // 3 chunks of 4,4,2
  std::size_t calls = 0;
  std::size_t last_nodes = 0;
  FleetOptions opt;
  opt.jobs = 1;
  opt.on_progress = [&](const FleetProgress& p) {
    ++calls;
    last_nodes = p.nodes_done;
    EXPECT_EQ(p.nodes_total, 10u);
    EXPECT_EQ(p.chunks_total, 3u);
  };
  (void)run_fleet(spec, opt);
  EXPECT_EQ(calls, 3u);
  EXPECT_EQ(last_nodes, 10u);
}

}  // namespace
}  // namespace focv::fleet
