// Byte-identity contract between the SoA engine's two kernels: the
// interval-major lane-batched sweep (fleet/soa_lanes.cpp) must produce
// EXACTLY the bytes of the node-major scalar sweep (soa_scalar.cpp) —
// same IEEE op sequence per lane, selects in place of branches, shared
// slow-path routine — in both table modes, at any worker count, and at
// every lane-tail / fallback edge the blocking can hit.
#include <gtest/gtest.h>

#include <string>

#include "env/profiles.hpp"
#include "fleet/fleet.hpp"
#include "pv/cell_library.hpp"

namespace focv::fleet {
namespace {

/// All-batchable roster over the paper's two measured day shapes: every
/// axis is a closed form the lane kernel runs (focv sample/hold, pilot
/// and fixed affine laws).
FleetSpec lanes_spec(std::size_t nodes, TableMode mode) {
  FleetSpec spec;
  spec.node_count = nodes;
  spec.root_seed = 2026;
  spec.chunk_size = 64;
  spec.table_mode = mode;
  spec.engine = FleetEngine::kSoa;
  spec.use_cell(pv::sanyo_am1815());
  spec.base.stepper = node::Stepper::kEvent;
  spec.base.storage.initial_voltage = 2.4;
  spec.base.load.report_period = 120.0;
  env::OfficeDayParams office;
  office.duration = 6.0 * 3600.0;
  spec.add_environment("office", env::office_desk_mixed(office), 0.6);
  spec.add_environment("sunday", env::desk_sunday_blinds_closed(7), 0.4);
  spec.add_policy("focv", 0.6);
  spec.add_policy("pilot", 0.2);
  spec.add_policy("fixed", 0.2);
  return spec;
}

std::string run_kernel(FleetSpec spec, SoaKernel kernel, int jobs) {
  spec.soa_kernel = kernel;
  FleetOptions opt;
  opt.jobs = jobs;
  return run_fleet(spec, opt).to_json();
}

/// The whole contract in one assertion: scalar jobs=1 is the reference;
/// lanes jobs=1, lanes jobs=4 and scalar jobs=4 must all match it.
void expect_kernels_identical(const FleetSpec& spec, const std::string& label) {
  const std::string ref = run_kernel(spec, SoaKernel::kScalar, 1);
  EXPECT_EQ(ref, run_kernel(spec, SoaKernel::kLanes, 1)) << label << " lanes jobs=1";
  EXPECT_EQ(ref, run_kernel(spec, SoaKernel::kLanes, 4)) << label << " lanes jobs=4";
  EXPECT_EQ(ref, run_kernel(spec, SoaKernel::kScalar, 4)) << label << " scalar jobs=4";
}

TEST(FleetSoaLanes, ByteIdenticalToScalarBothTableModes) {
  for (const TableMode mode : {TableMode::kFloat, TableMode::kQuantized}) {
    const FleetSpec spec = lanes_spec(1000, mode);
    expect_kernels_identical(spec,
                             mode == TableMode::kQuantized ? "quantized" : "float");
  }
}

TEST(FleetSoaLanes, LaneTailSizesByteIdentical) {
  // Chunk sizes and node counts chosen so axis runs end at every
  // residue mod the lane width: single-node runs, W-1 / W+1 tails, and
  // runs that fill whole blocks exactly. Tail blocks pad with replicas
  // of the last real node; any padding leak would corrupt these bytes.
  for (const std::size_t nodes : {1u, 3u, 7u, 8u, 9u, 63u, 64u, 65u, 130u}) {
    FleetSpec spec = lanes_spec(nodes, TableMode::kFloat);
    spec.chunk_size = 32;
    expect_kernels_identical(spec, "nodes=" + std::to_string(nodes));
  }
}

TEST(FleetSoaLanes, SlowPathCrossingsinsideLanesByteIdentical) {
  // Start every store exactly at the usable() gate: the first advance of
  // every lane takes the step-split slow path (e == e_use), and the
  // brownout/recovery churn afterwards keeps mixing slow and fast lanes
  // within single blocks. This pins the spill -> shared advance_slow ->
  // reload path, where a lane kernel would most plausibly diverge.
  for (const TableMode mode : {TableMode::kFloat, TableMode::kQuantized}) {
    FleetSpec spec = lanes_spec(200, mode);
    spec.base.storage.initial_voltage = spec.base.storage.min_useful_voltage;
    spec.base.load.report_period = 30.0;  // heavier load: more crossings
    expect_kernels_identical(spec, mode == TableMode::kQuantized ? "quantized" : "float");
  }
}

TEST(FleetSoaLanes, LanesKernelIsTheDefault) {
  FleetSpec spec;
  EXPECT_EQ(spec.soa_kernel, SoaKernel::kLanes);
}

}  // namespace
}  // namespace focv::fleet
