#include "node/sizing.hpp"

#include <gtest/gtest.h>

#include "core/focv_system.hpp"
#include "env/profiles.hpp"
#include "pv/cell_library.hpp"

namespace focv::node {
namespace {

SizingQuery office_query(mppt::MpptController& ctl, const env::LightTrace& trace,
                         double report_period) {
  SizingQuery q;
  q.cell = &pv::sanyo_am1815();
  q.scenario = &trace;
  q.controller = &ctl;
  q.load.report_period = report_period;
  return q;
}

TEST(Sizing, LightLoadNeedsSmallCell) {
  auto ctl = core::make_paper_controller();
  const env::LightTrace day = env::office_desk_mixed();
  const SizingResult r =
      size_for_energy_neutrality(office_query(ctl, day, 600.0));  // report every 10 min
  ASSERT_TRUE(r.feasible);
  EXPECT_LT(r.area_factor, 2.0);  // one AM-1815 class cell suffices
  EXPECT_GE(r.daily_harvest_j, r.daily_load_j);
  EXPECT_GT(r.storage_j, 0.0);   // must ride through the night
  EXPECT_GT(r.storage_f_at_3v, 0.0);
}

TEST(Sizing, HeavierLoadNeedsLargerCell) {
  auto ctl_light = core::make_paper_controller();
  auto ctl_heavy = core::make_paper_controller();
  const env::LightTrace day = env::office_desk_mixed();
  const SizingResult light =
      size_for_energy_neutrality(office_query(ctl_light, day, 600.0));
  const SizingResult heavy =
      size_for_energy_neutrality(office_query(ctl_heavy, day, 60.0));
  ASSERT_TRUE(light.feasible);
  ASSERT_TRUE(heavy.feasible);
  EXPECT_GT(heavy.area_factor, light.area_factor);
  EXPECT_GT(heavy.storage_j, light.storage_j);
}

TEST(Sizing, InfeasibleWhenScenarioIsDark) {
  auto ctl = core::make_paper_controller();
  const env::LightTrace dark = env::constant_light(0.0, 0.0, 86400.0, 60.0);
  const SizingResult r =
      size_for_energy_neutrality(office_query(ctl, dark, 600.0), 0.1, 4.0);
  EXPECT_FALSE(r.feasible);
}

TEST(Sizing, RejectsMissingInputs) {
  SizingQuery q;
  EXPECT_THROW(size_for_energy_neutrality(q), PreconditionError);
}

}  // namespace
}  // namespace focv::node
