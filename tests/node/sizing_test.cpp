#include "node/sizing.hpp"

#include <gtest/gtest.h>

#include "core/focv_system.hpp"
#include "env/profiles.hpp"
#include "pv/cell_library.hpp"

namespace focv::node {
namespace {

SizingQuery office_query(const env::LightTrace& trace, double report_period) {
  SizingQuery q;
  q.use_cell(pv::sanyo_am1815());
  q.use_scenario(trace);
  q.use_controller(core::make_paper_controller());
  q.load.report_period = report_period;
  return q;
}

TEST(Sizing, LightLoadNeedsSmallCell) {
  const env::LightTrace day = env::office_desk_mixed();
  const SizingResult r =
      size_for_energy_neutrality(office_query(day, 600.0));  // report every 10 min
  ASSERT_TRUE(r.feasible);
  EXPECT_LT(r.area_factor, 2.0);  // one AM-1815 class cell suffices
  EXPECT_GE(r.daily_harvest_j, r.daily_load_j);
  EXPECT_GT(r.storage_j, 0.0);   // must ride through the night
  EXPECT_GT(r.storage_f_at_3v, 0.0);
}

TEST(Sizing, HeavierLoadNeedsLargerCell) {
  const env::LightTrace day = env::office_desk_mixed();
  const SizingResult light = size_for_energy_neutrality(office_query(day, 600.0));
  const SizingResult heavy = size_for_energy_neutrality(office_query(day, 60.0));
  ASSERT_TRUE(light.feasible);
  ASSERT_TRUE(heavy.feasible);
  EXPECT_GT(heavy.area_factor, light.area_factor);
  EXPECT_GT(heavy.storage_j, light.storage_j);
}

TEST(Sizing, InfeasibleWhenScenarioIsDark) {
  const env::LightTrace dark = env::constant_light(0.0, 0.0, 86400.0, 60.0);
  const SizingResult r =
      size_for_energy_neutrality(office_query(dark, 600.0), 0.1, 4.0);
  EXPECT_FALSE(r.feasible);
}

TEST(Sizing, QueryIsReentrant) {
  // Two runs of the same const query agree bit-for-bit: the controller
  // prototype is cloned per run, never mutated in place.
  const env::LightTrace day = env::office_desk_mixed();
  const SizingQuery q = office_query(day, 600.0);
  const SizingResult a = size_for_energy_neutrality(q);
  const SizingResult b = size_for_energy_neutrality(q);
  EXPECT_DOUBLE_EQ(a.area_factor, b.area_factor);
  EXPECT_DOUBLE_EQ(a.storage_j, b.storage_j);
}

TEST(Sizing, RejectsMissingInputs) {
  SizingQuery q;
  EXPECT_THROW(size_for_energy_neutrality(q), PreconditionError);
}

}  // namespace
}  // namespace focv::node
