#include "node/harvester_node.hpp"

#include <gtest/gtest.h>

#include "core/focv_system.hpp"
#include "env/profiles.hpp"
#include "mppt/baselines.hpp"
#include "pv/cell_library.hpp"

namespace focv::node {
namespace {

NodeConfig base_config(const mppt::MpptController& ctl) {
  NodeConfig cfg;
  cfg.use_cell(pv::sanyo_am1815());
  cfg.use_controller(ctl);  // deep copy -- the caller's instance stays pristine
  cfg.storage.initial_voltage = 3.0;  // pre-charged store
  cfg.load.report_period = 120.0;
  return cfg;
}

TEST(HarvesterNode, ProposedControllerTracksWellUnderConstantLight) {
  NodeConfig cfg = base_config(core::make_paper_controller());
  const env::LightTrace trace = env::constant_light(1000.0, 0.0, 3600.0);
  const NodeReport report = simulate_node(trace, cfg);
  EXPECT_GT(report.tracking_efficiency(), 0.90);
  EXPECT_GT(report.harvested_energy, 0.0);
  EXPECT_LE(report.harvested_energy, report.ideal_mpp_energy * 1.0001);
}

TEST(HarvesterNode, EnergyAccountingIsConsistent) {
  NodeConfig cfg = base_config(core::make_paper_controller());
  const env::LightTrace trace = env::constant_light(1000.0, 0.0, 3600.0);
  const NodeReport report = simulate_node(trace, cfg);
  // Converter output cannot exceed its input.
  EXPECT_LE(report.delivered_energy, report.harvested_energy);
  // Overhead: ~25 uW for an hour.
  EXPECT_NEAR(report.overhead_energy, 25.1e-6 * 3600.0, 5e-3);
}

TEST(HarvesterNode, ProposedNetsMoreThanFixedVoltageIndoors) {
  // On the AM-1815 both techniques track near-optimally (the a-Si MPP
  // voltage is nearly flat in illuminance), so the differentiator is the
  // one the paper claims: the S&H overhead (25 uW) undercuts the
  // fixed-voltage reference IC (36 uW).
  NodeConfig cfg_a = base_config(core::make_paper_controller());
  NodeConfig cfg_b = base_config(mppt::FixedVoltageController{});
  const env::LightTrace trace = env::constant_light(500.0, 0.0, 4.0 * 3600.0);
  const NodeReport a = simulate_node(trace, cfg_a);
  const NodeReport b = simulate_node(trace, cfg_b);
  EXPECT_GT(a.net_energy(), b.net_energy());
  EXPECT_GT(a.tracking_efficiency(), 0.95);
  EXPECT_GT(b.tracking_efficiency(), 0.95);
}

TEST(HarvesterNode, FocvAdaptsAcrossCellsFixedVoltageDoesNot) {
  // Deploy both controllers on the 8-junction Schott module. FOCV keys
  // off the cell's own Voc and keeps tracking; the 3.0 V setting tuned
  // for the AM-1815 is now far off that cell's MPP.
  NodeConfig cfg_a = base_config(core::make_paper_controller());
  NodeConfig cfg_b = base_config(mppt::FixedVoltageController{});
  cfg_a.use_cell(pv::schott_asi_1116929());
  cfg_b.use_cell(pv::schott_asi_1116929());
  const env::LightTrace trace = env::constant_light(1000.0, 0.0, 3600.0);
  const NodeReport a = simulate_node(trace, cfg_a);
  const NodeReport b = simulate_node(trace, cfg_b);
  EXPECT_GT(a.tracking_efficiency(), b.tracking_efficiency() + 0.015);
}

TEST(HarvesterNode, DirectConnectionWorksButTracksWorse) {
  NodeConfig cfg_a = base_config(core::make_paper_controller());
  NodeConfig cfg_b = base_config(mppt::DirectConnectionController{});
  cfg_b.storage.initial_voltage = 2.0;  // store far from MPP voltage
  const env::LightTrace trace = env::constant_light(1000.0, 0.0, 3600.0);
  const NodeReport a = simulate_node(trace, cfg_a);
  const NodeReport b = simulate_node(trace, cfg_b);
  EXPECT_GT(b.harvested_energy, 0.0);
  EXPECT_GT(a.tracking_efficiency(), b.tracking_efficiency());
}

TEST(HarvesterNode, HighOverheadControllerFreezesBelowMinLux) {
  NodeConfig cfg = base_config(mppt::HillClimbingController{});  // min_lux 1500
  const env::LightTrace trace = env::constant_light(500.0, 0.0, 1800.0);
  const NodeReport report = simulate_node(trace, cfg);
  EXPECT_DOUBLE_EQ(report.harvested_energy, 0.0);
  EXPECT_DOUBLE_EQ(report.overhead_energy, 0.0);
  EXPECT_LT(report.coldstart_time, 0.0);  // never ran
}

TEST(HarvesterNode, ColdStartDelaysHarvesting) {
  NodeConfig cfg = base_config(core::make_paper_controller());
  cfg.storage.initial_voltage = 0.0;
  cfg.coldstart = power::ColdStartCircuit::Params{};
  const env::LightTrace trace = env::constant_light(200.0, 0.0, 600.0);
  const NodeReport report = simulate_node(trace, cfg);
  // At 200 lux C1 charges within the first (1 s) simulation step, so the
  // start time reads 0 -- matching the paper's "quickly generate a
  // signal on the PULSE line".
  EXPECT_GE(report.coldstart_time, 0.0);
  EXPECT_LT(report.coldstart_time, 30.0);
  EXPECT_GT(report.harvested_energy, 0.0);
}

TEST(HarvesterNode, BrownoutWhenStoreEmptyAndDark) {
  NodeConfig cfg = base_config(core::make_paper_controller());
  cfg.storage.initial_voltage = 0.0;  // empty, dark trace
  const env::LightTrace trace = env::constant_light(0.0, 0.0, 600.0);
  const NodeReport report = simulate_node(trace, cfg);
  EXPECT_GT(report.brownout_steps, 0);
  EXPECT_DOUBLE_EQ(report.load_energy_served, 0.0);
}

TEST(HarvesterNode, RecordsTracesWhenAsked) {
  NodeConfig cfg = base_config(core::make_paper_controller());
  cfg.record_traces = true;
  cfg.record_stride = 10;
  const env::LightTrace trace = env::constant_light(1000.0, 0.0, 600.0);
  const NodeReport report = simulate_node(trace, cfg);
  EXPECT_GT(report.time.size(), 10u);
  EXPECT_EQ(report.time.size(), report.pv_voltage.size());
  EXPECT_EQ(report.time.size(), report.store_voltage.size());
}

TEST(HarvesterNode, RejectsMissingPieces) {
  NodeConfig cfg;
  const env::LightTrace trace = env::constant_light(100.0, 0.0, 10.0);
  EXPECT_THROW(simulate_node(trace, cfg), PreconditionError);
}

TEST(HarvesterNode, ConfigIsReentrantAcrossRuns) {
  // The same const config run twice must give identical reports: each
  // run clones the controller prototype instead of mutating shared state.
  const NodeConfig cfg = base_config(core::make_paper_controller());
  const env::LightTrace trace = env::constant_light(800.0, 0.0, 1800.0);
  const NodeReport a = simulate_node(trace, cfg);
  const NodeReport b = simulate_node(trace, cfg);
  EXPECT_DOUBLE_EQ(a.harvested_energy, b.harvested_energy);
  EXPECT_DOUBLE_EQ(a.overhead_energy, b.overhead_energy);
  EXPECT_DOUBLE_EQ(a.final_store_voltage, b.final_store_voltage);
}

// The surrogate power model must agree with exact per-step solves to
// within the documented 0.1% bound on the quantities the paper reports,
// for every controller family and at each Table-I illuminance level.
class SurrogateAccuracy : public ::testing::TestWithParam<double> {};

void expect_surrogate_matches_exact(const mppt::MpptController& ctl, double lux) {
  NodeConfig cfg = base_config(ctl);
  const env::LightTrace trace = env::constant_light(lux, 0.0, 4.0 * 3600.0);

  cfg.power_model = PowerModel::kExact;
  const NodeReport exact = simulate_node(trace, cfg);
  cfg.power_model = PowerModel::kSurrogate;
  const NodeReport fast = simulate_node(trace, cfg);

  if (exact.harvested_energy == 0.0) {
    // Below the controller's operating floor both models must agree the
    // node never ran (pilot-cell baseline at 200 lux).
    EXPECT_DOUBLE_EQ(fast.harvested_energy, 0.0);
    return;
  }
  EXPECT_NEAR(fast.harvested_energy, exact.harvested_energy,
              1e-3 * exact.harvested_energy);
  EXPECT_NEAR(fast.tracking_efficiency(), exact.tracking_efficiency(), 1e-3);
  // The surrogate issues orders of magnitude fewer model solves.
  EXPECT_LT(fast.model_evals, exact.model_evals);
}

TEST_P(SurrogateAccuracy, PaperController) {
  expect_surrogate_matches_exact(core::make_paper_controller(), GetParam());
}

TEST_P(SurrogateAccuracy, FixedVoltageBaseline) {
  expect_surrogate_matches_exact(mppt::FixedVoltageController{}, GetParam());
}

TEST_P(SurrogateAccuracy, PilotCellBaseline) {
  expect_surrogate_matches_exact(mppt::PilotCellFocvController{}, GetParam());
}

INSTANTIATE_TEST_SUITE_P(TableOneLevels, SurrogateAccuracy,
                         ::testing::Values(200.0, 1000.0, 5000.0));

TEST(HarvesterNode, ReportExposesHotPathCounters) {
  NodeConfig cfg = base_config(core::make_paper_controller());
  const env::LightTrace trace = env::constant_light(1000.0, 0.0, 1800.0);
  const NodeReport report = simulate_node(trace, cfg);
  EXPECT_EQ(report.steps, trace.size() - 1);
  EXPECT_GT(report.model_evals, 0u);
  EXPECT_GT(report.curve_entries, 0u);
  // Constant light: a handful of surrogate grid entries, not one per step.
  EXPECT_LT(report.curve_entries, 8u);
  EXPECT_LT(report.model_evals, report.steps);
}

TEST(HarvesterNode, NetEnergyPositiveIndoorsForProposed) {
  // The headline claim: at office light the proposed technique nets
  // positive energy (overhead far below harvest).
  NodeConfig cfg = base_config(core::make_paper_controller());
  const env::LightTrace trace = env::constant_light(500.0, 0.0, 3600.0);
  const NodeReport report = simulate_node(trace, cfg);
  EXPECT_GT(report.net_energy(), 0.0);
}

TEST(HarvesterNode, BatteryStoreChargesUnderOfficeLight) {
  NodeConfig cfg = base_config(core::make_paper_controller());
  power::Battery::Params bat;
  bat.initial_soc = 0.3;
  cfg.battery = bat;
  const env::LightTrace trace = env::constant_light(1000.0, 0.0, 4.0 * 3600.0);
  const NodeReport report = simulate_node(trace, cfg);
  EXPECT_GT(report.net_energy(), 0.0);
  // The battery's OCV rose with its state of charge.
  EXPECT_GT(report.final_store_voltage, power::Battery(bat).open_circuit_voltage());
}

TEST(HarvesterNode, BatteryBrownoutWhenEmptyAndDark) {
  NodeConfig cfg = base_config(core::make_paper_controller());
  power::Battery::Params bat;
  bat.initial_soc = 0.0;
  cfg.battery = bat;
  const env::LightTrace trace = env::constant_light(0.0, 0.0, 600.0);
  const NodeReport report = simulate_node(trace, cfg);
  EXPECT_GT(report.brownout_steps, 0);
}

}  // namespace
}  // namespace focv::node
