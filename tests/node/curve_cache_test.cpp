#include "node/curve_cache.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/require.hpp"
#include "pv/cell_library.hpp"

namespace focv::node {
namespace {

constexpr double kRoomTempK = 300.15;

CurveCache::Options options_for(PowerModel model) {
  CurveCache::Options opt;
  opt.model = model;
  return opt;
}

// Illuminance ladder spanning desk light to full daylight, deliberately
// off any grid node (the worst case for the interpolation).
const std::vector<double> kLuxLadder = {137.0, 480.0, 1021.0, 3333.0, 9870.0, 41000.0};

TEST(CurveCache, SurrogatePowerWithinTenthOfPercentOfExact) {
  const pv::SingleDiodeModel& cell = pv::sanyo_am1815();
  CurveCache cache(cell, kRoomTempK, options_for(PowerModel::kSurrogate));
  cache.prepare(kLuxLadder);
  for (std::size_t i = 0; i < kLuxLadder.size(); ++i) {
    const pv::Conditions c = cache.conditions_at(kLuxLadder[i]);
    const double voc = cell.open_circuit_voltage(c);
    const double pmpp = cell.maximum_power_point(c, voc).power;
    for (int k = 1; k < 60; ++k) {
      const double v = voc * k / 60.0;
      const double exact = cell.power_at(v, c);
      const double fast = cache.power_at_step(i, v);
      EXPECT_NEAR(fast, exact, 1e-3 * pmpp)
          << "lux=" << kLuxLadder[i] << " v=" << v;
    }
  }
}

TEST(CurveCache, SurrogateCurveSummaryWithinTenthOfPercent) {
  const pv::SingleDiodeModel& cell = pv::sanyo_am1815();
  CurveCache cache(cell, kRoomTempK, options_for(PowerModel::kSurrogate));
  cache.prepare(kLuxLadder);
  for (std::size_t i = 0; i < kLuxLadder.size(); ++i) {
    const pv::Conditions c = cache.conditions_at(kLuxLadder[i]);
    const double voc = cell.open_circuit_voltage(c);
    const pv::MppResult mpp = cell.maximum_power_point(c, voc);
    const CurveCache::StepCurve s = cache.at_step(i);
    EXPECT_NEAR(s.voc, voc, 1e-3 * voc);
    EXPECT_NEAR(s.pmpp, mpp.power, 1e-3 * mpp.power);
    // Vmpp tolerance is looser in absolute terms: P(V) is flat at the
    // top, so a small Vmpp offset costs far less than 0.1 % of Pmpp.
    EXPECT_NEAR(s.vmpp, mpp.voltage, 1e-2 * mpp.voltage);
  }
}

TEST(CurveCache, SurrogateNeverExceedsItsOwnPmpp) {
  // Tracking efficiency stays <= 1 by construction: interpolated power
  // cannot beat the interpolated curve maximum.
  const pv::SingleDiodeModel& cell = pv::sanyo_am1815();
  CurveCache cache(cell, kRoomTempK, options_for(PowerModel::kSurrogate));
  cache.prepare(kLuxLadder);
  for (std::size_t i = 0; i < kLuxLadder.size(); ++i) {
    const CurveCache::StepCurve s = cache.at_step(i);
    for (int k = 0; k <= 100; ++k) {
      const double v = s.voc * 1.05 * k / 100.0;
      EXPECT_LE(cache.power_at_step(i, v), s.pmpp * (1.0 + 1e-12));
    }
  }
}

TEST(CurveCache, ExactModeMatchesDirectSolvesBitForBit) {
  const pv::SingleDiodeModel& cell = pv::sanyo_am1815();
  CurveCache cache(cell, kRoomTempK, options_for(PowerModel::kExact));
  cache.prepare(kLuxLadder);
  for (std::size_t i = 0; i < kLuxLadder.size(); ++i) {
    const pv::Conditions c = cache.conditions_at(kLuxLadder[i]);
    const double voc = cell.open_circuit_voltage(c);
    const pv::MppResult mpp = cell.maximum_power_point(c, voc);
    const CurveCache::StepCurve s = cache.at_step(i);
    EXPECT_EQ(s.voc, voc);
    EXPECT_EQ(s.pmpp, mpp.power);
    EXPECT_EQ(s.vmpp, mpp.voltage);
    const double v = 0.8 * voc;
    EXPECT_EQ(cache.power_at_step(i, v), cell.power_at(v, c));
  }
}

TEST(CurveCache, ExactModeKeysBucketsByFirstEncounter) {
  // Two illuminances in the same 0.1 % bucket share the first one's
  // curve — the memoisation the pre-surrogate engine used, preserved
  // for bit-stable trajectories.
  const pv::SingleDiodeModel& cell = pv::sanyo_am1815();
  CurveCache cache(cell, kRoomTempK, options_for(PowerModel::kExact));
  const std::vector<double> lux = {1000.0, 1000.2, 1000.0};
  cache.prepare(lux);
  EXPECT_EQ(cache.entries_built(), 1u);
  const CurveCache::StepCurve a = cache.at_step(0);
  const CurveCache::StepCurve b = cache.at_step(1);
  EXPECT_EQ(a.voc, b.voc);
  EXPECT_EQ(a.pmpp, b.pmpp);
}

TEST(CurveCache, DarkStepsAreFreeAndZero) {
  const pv::SingleDiodeModel& cell = pv::sanyo_am1815();
  const std::vector<double> lux = {0.0, 0.01, 500.0};
  for (const PowerModel model : {PowerModel::kSurrogate, PowerModel::kExact}) {
    CurveCache cache(cell, kRoomTempK, options_for(model));
    cache.prepare(lux);  // must outlive the cache in exact mode
    EXPECT_EQ(cache.at_step(0).pmpp, 0.0);
    EXPECT_EQ(cache.at_step(1).voc, 0.0);
    EXPECT_EQ(cache.power_at_step(0, 1.5), 0.0);
    EXPECT_GT(cache.at_step(2).pmpp, 0.0);
  }
}

TEST(CurveCache, ConstantLightBuildsOnlyNeighbouringEntries) {
  const pv::SingleDiodeModel& cell = pv::sanyo_am1815();
  CurveCache cache(cell, kRoomTempK, options_for(PowerModel::kSurrogate));
  const std::vector<double> lux(10000, 750.0);
  cache.prepare(lux);
  EXPECT_EQ(cache.entries_built(), 2u);  // node j and its j+1 neighbour
  // Preparation cost is bounded by entries, not steps.
  EXPECT_LE(cache.model_evals(), 2u * (2u + 128u));
  // Per-step queries issue no further solves in surrogate mode.
  const std::uint64_t before = cache.model_evals();
  (void)cache.power_at_step(123, 1.0);
  EXPECT_EQ(cache.model_evals(), before);
}

TEST(CurveCache, RePrepareIsFreeForAnIdenticalSeries) {
  // Re-preparation replaced the old one-shot contract: preparing the
  // same series again reuses every entry and solves nothing new.
  const pv::SingleDiodeModel& cell = pv::sanyo_am1815();
  CurveCache cache(cell, kRoomTempK);
  cache.prepare({500.0});
  const std::uint64_t evals = cache.model_evals();
  const std::uint64_t entries = cache.entries_built();
  cache.prepare({500.0});
  EXPECT_EQ(cache.model_evals(), evals);
  EXPECT_EQ(cache.entries_built(), entries);
}

TEST(CurveCache, RejectsTinyTables) {
  const pv::SingleDiodeModel& cell = pv::sanyo_am1815();
  CurveCache::Options bad;
  bad.surrogate_points = 4;
  EXPECT_THROW(CurveCache(cell, kRoomTempK, bad), PreconditionError);
}

TEST(CurveCache, SurrogateRePrepareMatchesFreshCache) {
  // The fleet stepper re-prepares one cache across many nodes. A re-used
  // cache must answer exactly like a fresh one for the new series, while
  // keeping (and growing) the grid entries it already solved.
  const pv::SingleDiodeModel& cell = pv::sanyo_am1815();
  // Wider span, a dark step, and one illuminance (480) shared with the
  // first series whose grid entries must be reused, not re-solved.
  const std::vector<double> first = {137.0, 480.0, 1021.0};
  const std::vector<double> second = {55.0, 480.0, 22000.0, 0.0};

  CurveCache reused(cell, kRoomTempK, options_for(PowerModel::kSurrogate));
  reused.prepare(first);
  const std::uint64_t evals_first = reused.model_evals();
  reused.prepare(second);

  CurveCache fresh(cell, kRoomTempK, options_for(PowerModel::kSurrogate));
  fresh.prepare(second);

  for (std::size_t i = 0; i < second.size(); ++i) {
    const CurveCache::StepCurve a = reused.at_step(i);
    const CurveCache::StepCurve b = fresh.at_step(i);
    EXPECT_EQ(a.voc, b.voc) << i;
    EXPECT_EQ(a.pmpp, b.pmpp) << i;
    for (int k = 1; k < 20; ++k) {
      const double v = b.voc * k / 20.0;
      EXPECT_EQ(reused.power_at_step(i, v), fresh.power_at_step(i, v)) << i << " " << v;
    }
  }
  // Overlapping grid nodes were reused, not re-solved: the second
  // prepare costs fewer evals than the fresh cache's.
  EXPECT_LT(reused.model_evals() - evals_first, fresh.model_evals());
  // Counters accumulate across prepares instead of resetting.
  EXPECT_GE(reused.model_evals(), evals_first);
}

TEST(CurveCache, ExactRePrepareMatchesFreshCache) {
  // Exact mode keys entries by first-encounter illuminance, so re-using
  // a cache must reset them; the trajectory has to stay bit-identical to
  // a fresh cache even when the two series disagree about which
  // illuminance arrives first.
  const pv::SingleDiodeModel& cell = pv::sanyo_am1815();
  const std::vector<double> first = {1021.0, 137.0};
  const std::vector<double> second = {137.0, 1021.0, 480.0};

  CurveCache reused(cell, kRoomTempK, options_for(PowerModel::kExact));
  reused.prepare(first);
  reused.prepare(second);

  CurveCache fresh(cell, kRoomTempK, options_for(PowerModel::kExact));
  fresh.prepare(second);

  for (std::size_t i = 0; i < second.size(); ++i) {
    const CurveCache::StepCurve a = reused.at_step(i);
    const CurveCache::StepCurve b = fresh.at_step(i);
    EXPECT_EQ(a.voc, b.voc) << i;
    EXPECT_EQ(a.pmpp, b.pmpp) << i;
    EXPECT_EQ(reused.power_at_step(i, 0.7 * b.voc), fresh.power_at_step(i, 0.7 * b.voc)) << i;
  }
}

}  // namespace
}  // namespace focv::node
