// Reproduction assertions: Fig. 2's qualitative features ("Sunrise, and
// lights-off at the end of the day, can easily be identified").
#include <gtest/gtest.h>

#include "env/profiles.hpp"
#include "env/solar.hpp"
#include "pv/cell_library.hpp"

namespace focv {
namespace {

TEST(Fig2Repro, SunriseVisibleInVocTrace) {
  const env::LightTrace day = env::office_desk_mixed();
  const auto voc = day.voc_series(pv::schott_asi_1116929(), 300.15);
  const auto& t = day.time();
  const double sunrise = env::sunrise_time(env::SolarConfig{});
  double voc_before = 0.0, voc_after = 0.0;
  int n_before = 0, n_after = 0;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i] > sunrise - 3600.0 && t[i] < sunrise - 1800.0) {
      voc_before += voc[i];
      ++n_before;
    }
    if (t[i] > sunrise + 1800.0 && t[i] < sunrise + 3600.0) {
      voc_after += voc[i];
      ++n_after;
    }
  }
  ASSERT_GT(n_before, 0);
  ASSERT_GT(n_after, 0);
  // Dark before sunrise, volts after: an easily identified edge.
  EXPECT_LT(voc_before / n_before, 0.5);
  EXPECT_GT(voc_after / n_after, 3.0);
}

TEST(Fig2Repro, LightsOffVisibleAsVocStep) {
  env::OfficeDayParams params;
  const env::LightTrace day = env::office_desk_mixed(params);
  const auto voc = day.voc_series(pv::schott_asi_1116929(), 300.15);
  const auto& t = day.time();
  double before = 0.0, after = 0.0;
  int nb = 0, na = 0;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i] > params.lights_off_time - 1200.0 && t[i] < params.lights_off_time - 60.0) {
      before += voc[i];
      ++nb;
    }
    if (t[i] > params.lights_off_time + 60.0 && t[i] < params.lights_off_time + 1200.0) {
      after += voc[i];
      ++na;
    }
  }
  ASSERT_GT(nb, 0);
  ASSERT_GT(na, 0);
  // A clear downward step when the office lights go out.
  EXPECT_GT(before / nb - after / na, 0.2);
}

TEST(Fig2Repro, VocStaysInPlausibleASiBand) {
  const env::LightTrace day = env::office_desk_mixed();
  const auto voc = day.voc_series(pv::schott_asi_1116929(), 300.15);
  for (const double v : voc) {
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 7.3);  // below the module's built-in potential
  }
}

TEST(Fig2Repro, NightIsDark) {
  const env::LightTrace day = env::office_desk_mixed();
  const auto voc = day.voc_series(pv::schott_asi_1116929(), 300.15);
  const auto& t = day.time();
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i] < 2.0 * 3600.0) EXPECT_LT(voc[i], 0.5) << "t=" << t[i];
  }
}

}  // namespace
}  // namespace focv
