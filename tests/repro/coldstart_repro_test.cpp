// Reproduction assertions: cold start down to 200 lux (Section IV-B).
#include <cmath>

#include <gtest/gtest.h>

#include "env/profiles.hpp"
#include "core/focv_system.hpp"
#include "node/harvester_node.hpp"
#include "power/coldstart.hpp"
#include "pv/cell_library.hpp"

namespace focv {
namespace {

TEST(ColdStartRepro, StartsAt200LuxBehavioural) {
  power::ColdStartCircuit cs;
  pv::Conditions c;
  c.illuminance_lux = 200.0;
  const double t = cs.time_to_start(pv::sanyo_am1815(), c);
  EXPECT_GT(t, 0.0);
  EXPECT_LT(t, 10.0);
}

TEST(ColdStartRepro, FullNodeColdStartsAndHarvests) {
  node::NodeConfig cfg;
  cfg.use_cell(pv::sanyo_am1815());
  cfg.use_controller(core::make_paper_controller());
  cfg.storage.initial_voltage = 0.0;
  cfg.coldstart = power::ColdStartCircuit::Params{};
  const env::LightTrace trace = env::constant_light(200.0, 0.0, 1200.0);
  const node::NodeReport report = node::simulate_node(trace, cfg);
  EXPECT_GE(report.coldstart_time, 0.0);
  EXPECT_LT(report.coldstart_time, 30.0);
  EXPECT_GT(report.net_energy(), 0.0);  // MPPT profitable even at 200 lux
}

TEST(ColdStartRepro, CannotStartInDeepDarkness) {
  // Below ~1 lux the cell's current no longer beats the threshold
  // detector's standby leakage and the reservoir never reaches the
  // enable voltage.
  power::ColdStartCircuit cs;
  pv::Conditions c;
  c.illuminance_lux = 0.3;
  EXPECT_TRUE(std::isinf(cs.time_to_start(pv::sanyo_am1815(), c)));
}

}  // namespace
}  // namespace focv
