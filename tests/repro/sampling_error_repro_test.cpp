// Reproduction assertions: Section II-B sampling-error analysis.
#include <gtest/gtest.h>

#include "analysis/sampling_error.hpp"
#include "env/profiles.hpp"
#include "pv/cell_library.hpp"

namespace focv {
namespace {

TEST(SamplingErrorRepro, DeskTestNearTwelvePointSevenMillivolts) {
  const env::LightTrace trace = env::desk_sunday_blinds_closed();
  const auto voc = trace.voc_series(pv::schott_asi_1116929(), 300.15);
  const double e = analysis::worst_case_mean_error(voc, 60);
  // Paper: 12.7 mV for a 1-minute hold. Allow +-20% (synthetic light).
  EXPECT_NEAR(e, 12.7e-3, 0.2 * 12.7e-3);
}

TEST(SamplingErrorRepro, SemiMobileNearTwentyFourMillivolts) {
  const env::LightTrace trace = env::semi_mobile_day();
  const auto voc = trace.voc_series(pv::schott_asi_1116929(), 300.15);
  const double e = analysis::worst_case_mean_error(voc, 60);
  // Paper: 24.1 mV.
  EXPECT_NEAR(e, 24.1e-3, 0.2 * 24.1e-3);
}

TEST(SamplingErrorRepro, MppErrorMapsThroughK) {
  // 12.7 mV -> ~7.7 mV and 24.1 mV -> ~14.7 mV via Vmpp = k * Voc.
  EXPECT_NEAR(analysis::mpp_voltage_error(12.7e-3, 0.603), 7.7e-3, 0.3e-3);
  EXPECT_NEAR(analysis::mpp_voltage_error(24.1e-3, 0.61), 14.7e-3, 0.3e-3);
}

TEST(SamplingErrorRepro, EfficiencyLossBelowOnePercent) {
  // "this equates to an efficiency loss of less than 1%".
  pv::Conditions c;
  c.illuminance_lux = 1000.0;
  const double loss =
      analysis::efficiency_loss_at_offset(pv::schott_asi_1116929(), c, 14.7e-3);
  EXPECT_LT(loss, 0.01);
}

TEST(SamplingErrorRepro, LongHoldJustified) {
  // The design conclusion: >60 s holds remain cheap. Check the error at
  // 120 s is still well under the harmful range (tens of mV -> <1%).
  const env::LightTrace trace = env::desk_sunday_blinds_closed();
  const auto voc = trace.voc_series(pv::schott_asi_1116929(), 300.15);
  const double e120 = analysis::worst_case_mean_error(voc, 120);
  pv::Conditions c;
  c.illuminance_lux = 1000.0;
  EXPECT_LT(analysis::efficiency_loss_at_offset(pv::schott_asi_1116929(), c, 0.61 * e120),
            0.02);
}

}  // namespace
}  // namespace focv
