// Reproduction assertions: Section IV power figures.
#include <gtest/gtest.h>

#include "core/focv_system.hpp"
#include "pv/cell_library.hpp"

namespace focv {
namespace {

TEST(PowerBudgetRepro, AverageCurrentSevenPointSixMicroamps) {
  const auto ctl = core::make_paper_controller();
  EXPECT_NEAR(ctl.average_current(), 7.6e-6, 0.1e-6);
}

TEST(PowerBudgetRepro, WorstCaseBelowEightMicroamps) {
  // Evaluation: "additional current draw ... is 8 uA".
  const auto budget = core::paper_power_budget();
  EXPECT_LE(budget.total_current() * 1.05, 8.05e-6);
}

TEST(PowerBudgetRepro, UnderTwentyPercentOfCellCurrentAt200Lux) {
  // "less than 20% of the current produced at 200 lux" (8/42 uA ~ 19%).
  const auto ctl = core::make_paper_controller();
  pv::Conditions c;
  c.illuminance_lux = 200.0;
  const double impp = pv::sanyo_am1815().maximum_power_point(c).current;
  EXPECT_LT(ctl.average_current() / impp, 0.20);
}

TEST(PowerBudgetRepro, SamplingPowerShareAt200LuxNearPaperEstimate) {
  // "at 200 lux <18% of the power obtained from the cell is used to
  // power the sample-and-hold circuitry" (computed against the paper's
  // 42 uA / 3.0 V operating point; our model reproduces ~18-20%).
  const auto ctl = core::make_paper_controller();
  pv::Conditions c;
  c.illuminance_lux = 200.0;
  const double p_cell = pv::sanyo_am1815().maximum_power_point(c).power;
  const double share = ctl.overhead_power() / p_cell;
  EXPECT_GT(share, 0.12);
  EXPECT_LT(share, 0.22);
}

TEST(PowerBudgetRepro, LessThanFixedVoltageReferenceIc) {
  // "less than that of a voltage reference IC used in the reported
  // fixed-voltage technique [8]".
  const auto ctl = core::make_paper_controller();
  EXPECT_LT(ctl.average_current(), 11e-6);
}

}  // namespace
}  // namespace focv
