// Reproduction assertions: the state-of-the-art comparison (Sections I,
// IV-B): who can afford to track at which light level.
#include <gtest/gtest.h>

#include "core/focv_system.hpp"
#include "env/profiles.hpp"
#include "mppt/baselines.hpp"
#include "node/harvester_node.hpp"
#include "pv/cell_library.hpp"

namespace focv {
namespace {

node::NodeReport run(const mppt::MpptController& ctl, const env::LightTrace& trace) {
  node::NodeConfig cfg;
  cfg.use_cell(pv::sanyo_am1815());
  cfg.use_controller(ctl);
  cfg.storage.initial_voltage = 3.0;
  cfg.load.report_period = 300.0;  // light duty load
  return node::simulate_node(trace, cfg);
}

TEST(ComparisonRepro, ProposedNetsPositiveIndoorsBaselinesDoNot) {
  const env::LightTrace office = env::constant_light(500.0, 0.0, 4.0 * 3600.0);
  auto proposed = core::make_paper_controller();
  mppt::HillClimbingController po;
  mppt::PhotodetectorController photo;
  mppt::PeriodicDisconnectFocvController periodic;
  mppt::PilotCellFocvController pilot;

  EXPECT_GT(run(proposed, office).net_energy(), 0.0);
  // The outdoor techniques cannot even run at 500 lux (supply floor) --
  // and if they could, their overhead would exceed the ~0.3 mW harvest.
  EXPECT_LE(run(po, office).net_energy(), 0.0);
  EXPECT_LE(run(photo, office).net_energy(), 0.0);
  EXPECT_LE(run(periodic, office).net_energy(), 0.0);
  // The pilot-cell system runs at 500 lux but its 300 uW overhead eats
  // the harvest.
  EXPECT_LT(run(pilot, office).net_energy(), run(proposed, office).net_energy());
}

TEST(ComparisonRepro, ProposedCompetitiveOutdoors) {
  const env::LightTrace bright = env::constant_light(0.0, 40000.0, 3600.0);
  auto proposed = core::make_paper_controller();
  mppt::HillClimbingController po;
  const node::NodeReport a = run(proposed, bright);
  const node::NodeReport b = run(po, bright);
  EXPECT_GT(a.net_energy(), 0.0);
  EXPECT_GT(b.net_energy(), 0.0);
  // Outdoors the proposed system stays within ~15% of the hill climber
  // (which tracks the true MPP but pays 1 mW for it).
  EXPECT_GT(a.net_energy(), 0.85 * b.net_energy());
}

TEST(ComparisonRepro, ProposedMatchesFixedVoltageAcrossMixedDayWithoutTuning) {
  // On the AM-1815 itself a well-tuned fixed voltage is an excellent
  // tracker (the calibrated cell's MPP voltage is nearly flat in
  // illuminance), so across the bright mixed day the two land within a
  // few percent of each other -- but the fixed setting had to be tuned
  // to this exact cell, while FOCV derives it from the cell's own Voc.
  const env::LightTrace day = env::semi_mobile_day();
  auto proposed = core::make_paper_controller();
  mppt::FixedVoltageController fixed;
  const node::NodeReport a = run(proposed, day);
  const node::NodeReport b = run(fixed, day);
  EXPECT_GT(a.net_energy(), 0.95 * b.net_energy());
  // Indoors (overhead-dominated regime) the proposed technique nets
  // strictly more: the S&H draws less than the reference IC (paper,
  // Section IV-B).
  const env::LightTrace office = env::constant_light(400.0, 0.0, 6.0 * 3600.0);
  auto proposed2 = core::make_paper_controller();
  mppt::FixedVoltageController fixed2;
  EXPECT_GT(run(proposed2, office).net_energy(), run(fixed2, office).net_energy());
}

TEST(ComparisonRepro, FocvPortsAcrossCellsFixedVoltageNeedsRetuning) {
  // Swap in the 8-junction Schott module: FOCV keeps tracking; the
  // 3.0 V setting tuned for the AM-1815 is now well below that cell's
  // MPP voltage.
  const env::LightTrace office = env::constant_light(1000.0, 0.0, 3600.0);
  node::NodeConfig cfg_a;
  cfg_a.use_cell(pv::schott_asi_1116929());
  cfg_a.use_controller(core::make_paper_controller());
  cfg_a.storage.initial_voltage = 3.0;
  node::NodeConfig cfg_b = cfg_a;
  cfg_b.use_controller(mppt::FixedVoltageController{});
  const node::NodeReport a = node::simulate_node(office, cfg_a);
  const node::NodeReport b = node::simulate_node(office, cfg_b);
  EXPECT_GT(a.tracking_efficiency(), b.tracking_efficiency() + 0.015);
}

TEST(ComparisonRepro, DisconnectLossOrdersOfMagnitudeBelow100msFocv) {
  // [4] samples every 100 ms (5% disconnection); the proposed 39 ms / 69 s
  // keeps the cell connected 99.94% of the time.
  const double proposed_duty = 0.039 / 69.039;
  const double simjee_duty = 0.005 / 0.1;
  EXPECT_LT(proposed_duty, simjee_duty / 50.0);
}

}  // namespace
}  // namespace focv
