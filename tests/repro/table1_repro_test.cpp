// Reproduction assertions: Table I (tracking accuracy).
#include <gtest/gtest.h>

#include "core/focv_system.hpp"
#include "mppt/focv_sample_hold.hpp"
#include "pv/calibration.hpp"
#include "pv/cell_library.hpp"

namespace focv {
namespace {

TEST(Table1Repro, EffectiveKWithinPaperBand) {
  // The paper reports 2*HELD/Voc between 59.2% and 60.1% across
  // 200..5000 lux. Behavioural tier, nominal trim.
  auto ctl = core::make_paper_controller();
  pv::Conditions c;
  for (const pv::VocAnchor& anchor : pv::table1_voc_anchors()) {
    c.illuminance_lux = anchor.lux;
    const double voc = pv::sanyo_am1815().open_circuit_voltage(c);
    ctl.reset();
    mppt::SensedInputs s;
    s.time = 0.0;
    s.dt = 1.0;
    s.voc = voc;
    (void)ctl.step(s);
    const double held = ctl.held_sample(1.0);
    const double k_pct = 2.0 * held / voc * 100.0;
    EXPECT_GT(k_pct, 59.0) << "lux=" << anchor.lux;
    EXPECT_LT(k_pct, 60.5) << "lux=" << anchor.lux;
  }
}

TEST(Table1Repro, HeldValuesNearPaper) {
  // Paper HELD column: 1.483 V at 200 lux ... 1.775 V at 5000 lux.
  auto ctl = core::make_paper_controller();
  pv::Conditions c;
  struct Row {
    double lux, held;
  };
  const Row rows[] = {{200, 1.483}, {1000, 1.624}, {5000, 1.775}};
  for (const Row& row : rows) {
    c.illuminance_lux = row.lux;
    ctl.reset();
    mppt::SensedInputs s;
    s.time = 0.0;
    s.dt = 1.0;
    s.voc = pv::sanyo_am1815().open_circuit_voltage(c);
    (void)ctl.step(s);
    // Within 25 mV: the cell model's Voc residual (up to ~32 mV at some
    // anchors) scaled by the divider.
    EXPECT_NEAR(ctl.held_sample(1.0), row.held, 0.025) << "lux=" << row.lux;
  }
}

}  // namespace
}  // namespace focv
