#include "runtime/sweep.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "core/focv_system.hpp"
#include "env/profiles.hpp"
#include "mppt/baselines.hpp"
#include "pv/cell_library.hpp"

namespace focv::runtime {
namespace {

SweepSpec small_matrix() {
  SweepSpec spec;
  spec.add_cell("AM-1815", pv::sanyo_am1815());
  spec.add_controller("proposed", core::make_paper_controller());
  spec.add_controller("fixed", mppt::FixedVoltageController{});
  spec.add_scenario("office 30 min", env::constant_light(500.0, 0.0, 1800.0));
  spec.add_scenario("bright 30 min", env::constant_light(0.0, 20000.0, 1800.0));
  spec.base.storage.initial_voltage = 3.0;
  spec.base.load.report_period = 300.0;
  return spec;
}

TEST(Sweep, ResultIsByteIdenticalAcrossThreadCounts) {
  // The headline determinism contract: the exported table of a threaded
  // run equals the serial reference byte for byte. Per-job RNG streams
  // plus index-addressed result slots make the schedule irrelevant.
  const SweepSpec spec = small_matrix();
  SweepOptions serial;
  serial.jobs = 1;
  SweepOptions threaded;
  threaded.jobs = 8;
  const SweepResult a = run_sweep(spec, serial);
  const SweepResult b = run_sweep(spec, threaded);
  EXPECT_EQ(a.to_csv(), b.to_csv());
  EXPECT_EQ(a.to_json(), b.to_json());
}

TEST(Sweep, MonteCarloGridIsScheduleIndependent) {
  // Grid points that draw from the per-job RNG (the tolerance MC shape)
  // must also reproduce across thread counts: the stream belongs to the
  // job index, not to the worker.
  SweepSpec spec = small_matrix();
  for (int i = 0; i < 6; ++i) {
    spec.add_grid_point("unit " + std::to_string(i),
                        [](node::NodeConfig& cfg, Rng& rng) {
                          cfg.storage.initial_voltage = rng.uniform(2.5, 3.0);
                        });
  }
  SweepOptions serial;
  serial.jobs = 1;
  SweepOptions threaded;
  threaded.jobs = 8;
  EXPECT_EQ(run_sweep(spec, serial).to_csv(), run_sweep(spec, threaded).to_csv());
}

TEST(Sweep, AtAddressesTheMatrixInDeclarationOrder) {
  const SweepResult r = run_sweep(small_matrix());
  EXPECT_EQ(r.records().size(), 4u);
  EXPECT_EQ(r.at(0, 0, 1).controller, "proposed");
  EXPECT_EQ(r.at(0, 0, 1).scenario, "bright 30 min");
  EXPECT_EQ(r.at(0, 1, 0).controller, "fixed");
  EXPECT_EQ(r.at(0, 1, 0).scenario, "office 30 min");
  EXPECT_THROW(r.at(0, 2, 0), PreconditionError);
}

TEST(Sweep, MatchesADirectSimulateNodeCall) {
  // The engine adds orchestration, not physics: a matrix cell's report
  // equals the same run made by hand.
  const SweepSpec spec = small_matrix();
  const SweepResult swept = run_sweep(spec);
  node::NodeConfig cfg = spec.base;
  cfg.use_cell(pv::sanyo_am1815());
  cfg.use_controller(core::make_paper_controller());
  const node::NodeReport direct =
      node::simulate_node(env::constant_light(500.0, 0.0, 1800.0), cfg);
  const node::NodeReport& from_sweep = swept.at(0, 0, 0).report;
  EXPECT_DOUBLE_EQ(from_sweep.harvested_energy, direct.harvested_energy);
  EXPECT_DOUBLE_EQ(from_sweep.final_store_voltage, direct.final_store_voltage);
}

TEST(Sweep, CloneIndependenceAcrossJobs) {
  // One shared controller prototype serves every matrix cell; each job
  // clones it, so runs cannot contaminate each other. Two scenarios that
  // would perturb a stateful controller differently must still give the
  // same result for a repeated scenario.
  SweepSpec spec;
  spec.add_cell("AM-1815", pv::sanyo_am1815());
  spec.add_controller("proposed", core::make_paper_controller());
  spec.add_scenario("dark first", env::constant_light(0.0, 0.0, 900.0));
  spec.add_scenario("office", env::constant_light(500.0, 0.0, 1800.0));
  spec.add_scenario("office again", env::constant_light(500.0, 0.0, 1800.0));
  spec.base.storage.initial_voltage = 3.0;
  const SweepResult r = run_sweep(spec);
  // Whatever the dark run did to "its" controller is invisible here.
  EXPECT_DOUBLE_EQ(r.at(0, 0, 1).report.harvested_energy,
                   r.at(0, 0, 2).report.harvested_energy);
  EXPECT_DOUBLE_EQ(r.at(0, 0, 1).report.final_store_voltage,
                   r.at(0, 0, 2).report.final_store_voltage);
}

TEST(Sweep, AFailingJobIsIsolatedToItsCell) {
  SweepSpec spec = small_matrix();
  spec.add_grid_point("nominal", nullptr);
  spec.add_grid_point("poisoned", [](node::NodeConfig&, Rng&) {
    throw std::runtime_error("injected fault");
  });
  const SweepResult r = run_sweep(spec);
  EXPECT_EQ(r.records().size(), 8u);
  EXPECT_EQ(r.failed_count(), 4u);  // one poisoned point per ctl x scenario
  for (const SweepRecord& rec : r.records()) {
    if (rec.grid == "poisoned") {
      EXPECT_TRUE(rec.failed);
      EXPECT_NE(rec.error.find("injected fault"), std::string::npos);
    } else {
      EXPECT_FALSE(rec.failed) << rec.grid;
      EXPECT_GT(rec.report.harvested_energy, 0.0);
    }
  }
}

TEST(Sweep, SummaryAggregatesPerController) {
  const SweepResult r = run_sweep(small_matrix());
  const std::vector<SweepSummary> summary = r.summary();
  ASSERT_EQ(summary.size(), 2u);
  EXPECT_EQ(summary[0].controller, "proposed");
  EXPECT_EQ(summary[0].runs, 2u);
  EXPECT_EQ(summary[0].failures, 0u);
  EXPECT_GT(summary[0].harvested_energy.mean, 0.0);
  EXPECT_GE(summary[0].harvested_energy.max, summary[0].harvested_energy.min);
}

TEST(Sweep, ProgressCallbackSeesEveryJob) {
  SweepOptions options;
  options.jobs = 4;
  std::size_t calls = 0;
  std::size_t last_completed = 0;
  options.on_progress = [&](const SweepProgress& p) {
    ++calls;
    last_completed = p.completed;
    EXPECT_EQ(p.total, 4u);
    ASSERT_NE(p.last, nullptr);
  };
  const SweepResult r = run_sweep(small_matrix(), options);
  EXPECT_EQ(calls, r.records().size());
  EXPECT_EQ(last_completed, r.records().size());
}

TEST(Sweep, RejectsEmptyAndNullAxes) {
  SweepSpec empty;
  EXPECT_THROW((void)run_sweep(empty), PreconditionError);
  SweepSpec null_ctl = small_matrix();
  null_ctl.controllers[0].prototype = nullptr;
  EXPECT_THROW((void)run_sweep(null_ctl), PreconditionError);
}

TEST(Sweep, CsvHasOneRowPerJobAndStableHeader) {
  const SweepResult r = run_sweep(small_matrix());
  const std::string csv = r.to_csv();
  std::size_t rows = 0;
  for (const char c : csv) rows += (c == '\n') ? 1 : 0;
  EXPECT_EQ(rows, 1u + r.records().size());  // header + jobs
  EXPECT_EQ(csv.find("wall_s"), std::string::npos);  // timing opt-in only
  const std::string timed = r.to_csv(/*include_timing=*/true);
  EXPECT_NE(timed.find("wall_s"), std::string::npos);
  EXPECT_NE(timed.find("model_evals"), std::string::npos);
  EXPECT_NE(timed.find("curve_entries"), std::string::npos);
}

TEST(Sweep, CountersAreConsistentAcrossThreadCounts) {
  // The observability counters are physics facts, not scheduling facts:
  // totals and per-record values must agree between --jobs 1 and 8 even
  // though the per-job wall clocks differ run to run.
  const SweepSpec spec = small_matrix();
  SweepOptions serial;
  serial.jobs = 1;
  SweepOptions threaded;
  threaded.jobs = 8;
  const SweepResult a = run_sweep(spec, serial);
  const SweepResult b = run_sweep(spec, threaded);
  ASSERT_EQ(a.records().size(), b.records().size());
  EXPECT_GT(a.total_steps(), 0u);
  EXPECT_GT(a.total_model_evals(), 0u);
  EXPECT_EQ(a.total_steps(), b.total_steps());
  EXPECT_EQ(a.total_model_evals(), b.total_model_evals());
  for (std::size_t i = 0; i < a.records().size(); ++i) {
    const SweepRecord& ra = a.records()[i];
    const SweepRecord& rb = b.records()[i];
    EXPECT_EQ(ra.steps, rb.steps);
    EXPECT_EQ(ra.model_evals, rb.model_evals);
    EXPECT_EQ(ra.curve_entries, rb.curve_entries);
    // Each job did real, accounted work.
    EXPECT_EQ(ra.steps, ra.report.steps);
    EXPECT_GE(ra.wall_seconds, 0.0);
    EXPECT_GT(ra.steps, 0u);
    EXPECT_LE(ra.curve_entries, ra.model_evals);
  }
}

TEST(Sweep, ExactModeIsByteIdenticalAcrossThreadCountsToo) {
  // The exact power model keeps the historical trajectory; its exports
  // must hold the same determinism contract as the surrogate default.
  SweepSpec spec = small_matrix();
  spec.base.power_model = node::PowerModel::kExact;
  SweepOptions serial;
  serial.jobs = 1;
  SweepOptions threaded;
  threaded.jobs = 8;
  const SweepResult a = run_sweep(spec, serial);
  const SweepResult b = run_sweep(spec, threaded);
  EXPECT_EQ(a.to_csv(), b.to_csv());
  // Exact mode solves P(V) per lit step, so it works strictly harder
  // than the surrogate on the same matrix.
  const SweepResult s = run_sweep(small_matrix(), serial);
  EXPECT_GT(a.total_model_evals(), s.total_model_evals());
}

}  // namespace
}  // namespace focv::runtime
