#include "runtime/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "common/rng.hpp"

namespace focv::runtime {
namespace {

TEST(ThreadPool, RunsEverySubmittedTaskExactlyOnce) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 1000; ++i) pool.submit([&count] { ++count; });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 1000);
}

TEST(ThreadPool, ParallelForCoversTheFullRange) {
  ThreadPool pool(3);
  std::vector<int> hits(513, 0);
  pool.parallel_for(hits.size(), [&hits](std::size_t i) { hits[i] += 1; });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0),
            static_cast<int>(hits.size()));
}

TEST(ThreadPool, ParallelForZeroIsANoop) {
  ThreadPool pool(2);
  pool.parallel_for(0, [](std::size_t) { FAIL() << "must not be called"; });
}

TEST(ThreadPool, SubmitFromInsideATaskIsSupported) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  for (int i = 0; i < 16; ++i) {
    pool.submit([&pool, &count] {
      pool.submit([&count] { ++count; });
    });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 16);
}

TEST(ThreadPool, SingleThreadPoolStillCompletes) {
  ThreadPool pool(1);
  std::atomic<int> count{0};
  pool.parallel_for(100, [&count](std::size_t) { ++count; });
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, DefaultThreadCountIsAtLeastOne) {
  EXPECT_GE(ThreadPool::default_thread_count(), 1);
}

TEST(RngStreams, DerivedStreamsDifferAndAreStable) {
  // The per-job stream derivation must be a pure function of
  // (root, index) and spread neighbouring indices far apart.
  const std::uint64_t a = derive_stream_seed(2024, 0);
  const std::uint64_t b = derive_stream_seed(2024, 1);
  const std::uint64_t c = derive_stream_seed(2025, 0);
  EXPECT_NE(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(a, derive_stream_seed(2024, 0));
  // Streams seeded from neighbouring indices decorrelate immediately.
  Rng ra(a), rb(b);
  int agree = 0;
  for (int i = 0; i < 64; ++i) agree += (ra.next_u64() == rb.next_u64());
  EXPECT_EQ(agree, 0);
}

}  // namespace
}  // namespace focv::runtime
