#include "power/coldstart.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "pv/cell_library.hpp"

namespace focv::power {
namespace {

pv::Conditions at_lux(double lux) {
  pv::Conditions c;
  c.illuminance_lux = lux;
  return c;
}

TEST(ColdStart, ChargesAndFiresAt200Lux) {
  ColdStartCircuit cs;
  const auto& cell = pv::sanyo_am1815();
  const pv::Conditions c = at_lux(200.0);
  double t = 0.0;
  while (!cs.started() && t < 30.0) {
    cs.advance(cell, c, 0.1);
    t += 0.1;
  }
  EXPECT_TRUE(cs.started());
  EXPECT_LT(t, 10.0);  // "quickly generate a signal on the PULSE line"
}

TEST(ColdStart, TimeToStartMatchesSimulation) {
  ColdStartCircuit cs;
  const auto& cell = pv::sanyo_am1815();
  const pv::Conditions c = at_lux(200.0);
  const double predicted = cs.time_to_start(cell, c);
  double t = 0.0;
  while (!cs.started() && t < 60.0) {
    cs.advance(cell, c, 0.01);
    t += 0.01;
  }
  EXPECT_NEAR(t, predicted, 0.2 * predicted + 0.1);
}

TEST(ColdStart, NeverStartsInDarkness) {
  ColdStartCircuit cs;
  const auto& cell = pv::sanyo_am1815();
  const pv::Conditions dark = at_lux(1.0);
  EXPECT_TRUE(std::isinf(cs.time_to_start(cell, dark)));
  for (int i = 0; i < 100; ++i) cs.advance(cell, dark, 1.0);
  EXPECT_FALSE(cs.started());
}

TEST(ColdStart, FasterAtHigherLux) {
  ColdStartCircuit cs;
  const auto& cell = pv::sanyo_am1815();
  EXPECT_LT(cs.time_to_start(cell, at_lux(1000.0)), cs.time_to_start(cell, at_lux(200.0)));
}

TEST(ColdStart, HysteresisKeepsRunningUnderLoadDip) {
  ColdStartCircuit::Params p;
  p.threshold = 2.2;
  p.hysteresis = 0.4;
  ColdStartCircuit cs(p);
  const auto& cell = pv::sanyo_am1815();
  const pv::Conditions c = at_lux(400.0);
  while (!cs.started()) cs.advance(cell, c, 0.1);
  // With the MPPT load drawing more than the cell provides, C1 sags but
  // stays above threshold - hysteresis for a while.
  cs.advance(cell, at_lux(50.0), 1.0, 30e-6);
  EXPECT_TRUE(cs.started());
}

TEST(ColdStart, DropsOutBelowHysteresis) {
  ColdStartCircuit cs;
  const auto& cell = pv::sanyo_am1815();
  while (!cs.started()) cs.advance(cell, at_lux(400.0), 0.1);
  // Long dark spell with the load on: the reservoir empties.
  for (int i = 0; i < 600 && cs.started(); ++i) cs.advance(cell, at_lux(0.5), 1.0, 30e-6);
  EXPECT_FALSE(cs.started());
}

TEST(ColdStart, ResetRestoresEmptyState) {
  ColdStartCircuit cs;
  const auto& cell = pv::sanyo_am1815();
  while (!cs.started()) cs.advance(cell, at_lux(400.0), 0.1);
  cs.reset();
  EXPECT_FALSE(cs.started());
  EXPECT_DOUBLE_EQ(cs.capacitor_voltage(), 0.0);
}

}  // namespace
}  // namespace focv::power
