#include "power/converter.hpp"

#include <gtest/gtest.h>

namespace focv::power {
namespace {

TEST(Converter, EfficiencyBelowPeak) {
  const BuckBoostConverter conv;
  for (double p = 1e-6; p < 1e-2; p *= 3.0) {
    EXPECT_LE(conv.efficiency(p, 3.0), conv.params().efficiency_peak);
  }
}

TEST(Converter, OutputMonotoneInInputPower) {
  const BuckBoostConverter conv;
  double prev = 0.0;
  for (double p = 1e-6; p < 1e-2; p *= 1.5) {
    const double out = conv.output_power(p, 3.0);
    EXPECT_GE(out, prev);
    prev = out;
  }
}

TEST(Converter, NoOutputBelowMinimumVoltage) {
  const BuckBoostConverter conv;
  EXPECT_DOUBLE_EQ(conv.output_power(1e-3, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(conv.output_power(1e-3, 20.0), 0.0);
  EXPECT_GT(conv.output_power(1e-3, 3.0), 0.0);
}

TEST(Converter, FixedLossDominatesTinyInputs) {
  BuckBoostConverter::Params p;
  p.fixed_loss = 5e-6;
  const BuckBoostConverter conv(p);
  EXPECT_DOUBLE_EQ(conv.output_power(4e-6, 3.0), 0.0);  // eaten by control
  EXPECT_GT(conv.output_power(100e-6, 3.0), 0.0);
}

TEST(Converter, LightLoadEfficiencyRollsOff) {
  const BuckBoostConverter conv;
  EXPECT_LT(conv.efficiency(5e-6, 3.0), conv.efficiency(500e-6, 3.0));
}

TEST(Converter, ZeroAndNegativeInputSafe) {
  const BuckBoostConverter conv;
  EXPECT_DOUBLE_EQ(conv.output_power(0.0, 3.0), 0.0);
  EXPECT_DOUBLE_EQ(conv.output_power(-1e-3, 3.0), 0.0);
  EXPECT_DOUBLE_EQ(conv.efficiency(0.0, 3.0), 0.0);
}

TEST(Converter, RejectsBadParams) {
  BuckBoostConverter::Params p;
  p.efficiency_peak = 1.5;
  EXPECT_THROW(BuckBoostConverter{p}, focv::PreconditionError);
}

}  // namespace
}  // namespace focv::power
