#include "power/battery.hpp"

#include <gtest/gtest.h>

namespace focv::power {
namespace {

Battery::Params ideal() {
  Battery::Params p;
  p.capacity_j = 100.0;
  p.coulombic_efficiency = 1.0;
  p.self_discharge_per_day = 0.0;
  p.max_charge_power = 1e9;
  p.initial_soc = 0.5;
  return p;
}

TEST(Battery, ChargeAndDischargeTrackSoc) {
  Battery bat(ideal());
  bat.apply_power(1.0, 10.0);  // +10 J
  EXPECT_NEAR(bat.soc(), 0.6, 1e-12);
  bat.apply_power(-2.0, 10.0);  // -20 J
  EXPECT_NEAR(bat.soc(), 0.4, 1e-12);
}

TEST(Battery, CoulombicEfficiencyTaxesCharging) {
  Battery::Params p = ideal();
  p.coulombic_efficiency = 0.9;
  Battery bat(p);
  const double delta = bat.apply_power(1.0, 10.0);
  EXPECT_NEAR(delta, 9.0, 1e-12);
}

TEST(Battery, ChargeAcceptanceLimit) {
  Battery::Params p = ideal();
  p.max_charge_power = 0.5;
  Battery bat(p);
  const double delta = bat.apply_power(5.0, 10.0);  // asks 50 J, accepts 5 J
  EXPECT_NEAR(delta, 5.0, 1e-12);
}

TEST(Battery, ClampsAtFullAndEmpty) {
  Battery bat(ideal());
  bat.apply_power(100.0, 100.0);
  EXPECT_TRUE(bat.full());
  bat.apply_power(-100.0, 100.0);
  EXPECT_NEAR(bat.soc(), 0.0, 1e-12);
  EXPECT_FALSE(bat.usable());
}

TEST(Battery, OcvRisesWithSoc) {
  Battery bat(ideal());
  bat.set_soc(0.1);
  const double low = bat.open_circuit_voltage();
  bat.set_soc(0.9);
  EXPECT_GT(bat.open_circuit_voltage(), low);
}

TEST(Battery, TerminalVoltageDropsUnderLoad) {
  Battery bat(ideal());
  EXPECT_LT(bat.terminal_voltage(10e-3), bat.terminal_voltage(0.0));
}

TEST(Battery, SelfDischarge) {
  Battery::Params p = ideal();
  p.self_discharge_per_day = 0.1;
  Battery bat(p);
  bat.apply_power(0.0, 86400.0);
  EXPECT_NEAR(bat.soc(), 0.4, 1e-12);
}

TEST(Battery, RejectsBadParams) {
  Battery::Params p = ideal();
  p.capacity_j = 0.0;
  EXPECT_THROW(Battery{p}, focv::PreconditionError);
  Battery bat(ideal());
  EXPECT_THROW(bat.apply_power(1.0, 0.0), focv::PreconditionError);
  EXPECT_THROW(bat.set_soc(1.5), focv::PreconditionError);
}

}  // namespace
}  // namespace focv::power
