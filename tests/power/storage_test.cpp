#include "power/storage.hpp"

#include <cmath>

#include <gtest/gtest.h>

namespace focv::power {
namespace {

Supercapacitor::Params no_leak() {
  Supercapacitor::Params p;
  p.capacitance = 1.0;
  p.max_voltage = 5.0;
  p.min_useful_voltage = 1.8;
  p.self_discharge_resistance = 0.0;
  return p;
}

TEST(Supercapacitor, ChargingConservesEnergy) {
  Supercapacitor cap(no_leak());
  const double absorbed = cap.apply_power(1e-3, 100.0);  // 0.1 J
  EXPECT_NEAR(absorbed, 0.1, 1e-12);
  EXPECT_NEAR(cap.stored_energy(), 0.1, 1e-12);
  EXPECT_NEAR(cap.voltage(), std::sqrt(0.2), 1e-9);
}

TEST(Supercapacitor, DischargeStopsAtEmpty) {
  Supercapacitor cap(no_leak());
  cap.set_voltage(1.0);  // 0.5 J
  const double delivered = cap.apply_power(-1.0, 10.0);  // asks for 10 J
  EXPECT_NEAR(delivered, -0.5, 1e-12);
  EXPECT_DOUBLE_EQ(cap.voltage(), 0.0);
}

TEST(Supercapacitor, ClipsAtMaxVoltage) {
  Supercapacitor cap(no_leak());
  cap.apply_power(1.0, 1000.0);  // would exceed the 5 V limit
  EXPECT_NEAR(cap.voltage(), 5.0, 1e-9);
  EXPECT_TRUE(cap.full());
}

TEST(Supercapacitor, UsableThreshold) {
  Supercapacitor cap(no_leak());
  EXPECT_FALSE(cap.usable());
  cap.set_voltage(2.0);
  EXPECT_TRUE(cap.usable());
  cap.set_voltage(1.7);
  EXPECT_FALSE(cap.usable());
}

TEST(Supercapacitor, SelfDischargeDecays) {
  Supercapacitor::Params p = no_leak();
  p.self_discharge_resistance = 100.0;  // tau = 100 s
  Supercapacitor cap(p);
  cap.set_voltage(4.0);
  cap.apply_power(0.0, 100.0);
  EXPECT_NEAR(cap.voltage(), 4.0 * std::exp(-1.0), 1e-6);
}

TEST(Supercapacitor, AdvanceConstantPowerMatchesLinearCharge) {
  // No leak: the closed form degenerates to E += P dt, exactly what
  // apply_power does below the clamps.
  Supercapacitor cap(no_leak());
  cap.set_voltage(2.0);
  const double de = cap.advance_constant_power(1e-3, 500.0);
  EXPECT_NEAR(de, 0.5e-3 * 1000.0, 1e-12);
  EXPECT_NEAR(cap.stored_energy(), 0.5 * 2.0 * 2.0 + 0.5, 1e-12);
}

TEST(Supercapacitor, AdvanceConstantPowerIsASemigroup) {
  // The RC closed form is exact, so advancing T in one call must land
  // exactly where two calls of T/2 do — no splitting error.
  Supercapacitor::Params p = no_leak();
  p.self_discharge_resistance = 200.0;
  Supercapacitor one(p);
  Supercapacitor two(p);
  one.set_voltage(3.0);
  two.set_voltage(3.0);
  one.advance_constant_power(2e-4, 300.0);
  two.advance_constant_power(2e-4, 150.0);
  two.advance_constant_power(2e-4, 150.0);
  EXPECT_NEAR(one.voltage(), two.voltage(), 1e-12);
}

TEST(Supercapacitor, AdvanceConstantPowerIsFineStepLimit) {
  // apply_power splits decay and charge per step; its trajectory must
  // converge to the closed form as the step shrinks.
  Supercapacitor::Params p = no_leak();
  p.self_discharge_resistance = 500.0;
  Supercapacitor macro(p);
  Supercapacitor micro(p);
  macro.set_voltage(2.5);
  micro.set_voltage(2.5);
  macro.advance_constant_power(5e-4, 600.0);
  for (int i = 0; i < 6000; ++i) micro.apply_power(5e-4, 0.1);
  EXPECT_NEAR(macro.voltage(), micro.voltage(), 1e-4);
}

TEST(Supercapacitor, TimeToEnergyLinear) {
  Supercapacitor cap(no_leak());
  cap.set_voltage(1.0);  // 0.5 J
  const double target = cap.min_useful_energy();
  const double t = cap.time_to_energy(1e-3, target);
  ASSERT_TRUE(std::isfinite(t));
  EXPECT_NEAR(t, (target - 0.5) / 1e-3, 1e-9);
  cap.advance_constant_power(1e-3, t);
  EXPECT_NEAR(cap.stored_energy(), target, 1e-9);
  // Wrong direction: discharging never reaches a higher target.
  EXPECT_TRUE(std::isinf(cap.time_to_energy(-1e-3, 2.0 * target)));
}

TEST(Supercapacitor, TimeToEnergyWithLeak) {
  Supercapacitor::Params p = no_leak();
  p.self_discharge_resistance = 1000.0;
  Supercapacitor cap(p);
  cap.set_voltage(2.0);  // 2 J, draining towards the 1.62 J threshold
  const double target = cap.min_useful_energy();
  const double t = cap.time_to_energy(-1e-4, target);
  ASSERT_TRUE(std::isfinite(t));
  Supercapacitor probe(p);
  probe.set_voltage(2.0);
  probe.advance_constant_power(-1e-4, t);
  EXPECT_NEAR(probe.stored_energy(), target, 1e-9);
  // Asymptote short of the target: a charge rate whose equilibrium sits
  // below the threshold never crosses it.
  Supercapacitor low(p);
  low.set_voltage(0.5);
  EXPECT_TRUE(std::isinf(low.time_to_energy(1e-6, target)));
}

TEST(Supercapacitor, TimeToEnergyAtThresholdIsZero) {
  // A store sitting exactly on a threshold must still report the
  // crossing (t = 0), or the event engine would wait forever to flip
  // usable(); both the linear and the RC branch.
  Supercapacitor lin(no_leak());
  lin.set_voltage(1.8);
  EXPECT_EQ(lin.time_to_energy(-1e-4, lin.min_useful_energy()), 0.0);
  EXPECT_EQ(lin.time_to_energy(0.0, lin.min_useful_energy()), 0.0);
  Supercapacitor::Params p = no_leak();
  p.self_discharge_resistance = 1000.0;
  Supercapacitor rc(p);
  rc.set_voltage(1.8);
  EXPECT_EQ(rc.time_to_energy(-1e-4, rc.min_useful_energy()), 0.0);
}

TEST(Supercapacitor, RejectsBadUse) {
  Supercapacitor cap(no_leak());
  EXPECT_THROW(cap.apply_power(1.0, 0.0), focv::PreconditionError);
  EXPECT_THROW(cap.set_voltage(99.0), focv::PreconditionError);
  Supercapacitor::Params bad = no_leak();
  bad.capacitance = 0.0;
  EXPECT_THROW(Supercapacitor{bad}, focv::PreconditionError);
}

}  // namespace
}  // namespace focv::power
