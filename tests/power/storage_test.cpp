#include "power/storage.hpp"

#include <cmath>

#include <gtest/gtest.h>

namespace focv::power {
namespace {

Supercapacitor::Params no_leak() {
  Supercapacitor::Params p;
  p.capacitance = 1.0;
  p.max_voltage = 5.0;
  p.min_useful_voltage = 1.8;
  p.self_discharge_resistance = 0.0;
  return p;
}

TEST(Supercapacitor, ChargingConservesEnergy) {
  Supercapacitor cap(no_leak());
  const double absorbed = cap.apply_power(1e-3, 100.0);  // 0.1 J
  EXPECT_NEAR(absorbed, 0.1, 1e-12);
  EXPECT_NEAR(cap.stored_energy(), 0.1, 1e-12);
  EXPECT_NEAR(cap.voltage(), std::sqrt(0.2), 1e-9);
}

TEST(Supercapacitor, DischargeStopsAtEmpty) {
  Supercapacitor cap(no_leak());
  cap.set_voltage(1.0);  // 0.5 J
  const double delivered = cap.apply_power(-1.0, 10.0);  // asks for 10 J
  EXPECT_NEAR(delivered, -0.5, 1e-12);
  EXPECT_DOUBLE_EQ(cap.voltage(), 0.0);
}

TEST(Supercapacitor, ClipsAtMaxVoltage) {
  Supercapacitor cap(no_leak());
  cap.apply_power(1.0, 1000.0);  // would exceed the 5 V limit
  EXPECT_NEAR(cap.voltage(), 5.0, 1e-9);
  EXPECT_TRUE(cap.full());
}

TEST(Supercapacitor, UsableThreshold) {
  Supercapacitor cap(no_leak());
  EXPECT_FALSE(cap.usable());
  cap.set_voltage(2.0);
  EXPECT_TRUE(cap.usable());
  cap.set_voltage(1.7);
  EXPECT_FALSE(cap.usable());
}

TEST(Supercapacitor, SelfDischargeDecays) {
  Supercapacitor::Params p = no_leak();
  p.self_discharge_resistance = 100.0;  // tau = 100 s
  Supercapacitor cap(p);
  cap.set_voltage(4.0);
  cap.apply_power(0.0, 100.0);
  EXPECT_NEAR(cap.voltage(), 4.0 * std::exp(-1.0), 1e-6);
}

TEST(Supercapacitor, RejectsBadUse) {
  Supercapacitor cap(no_leak());
  EXPECT_THROW(cap.apply_power(1.0, 0.0), focv::PreconditionError);
  EXPECT_THROW(cap.set_voltage(99.0), focv::PreconditionError);
  Supercapacitor::Params bad = no_leak();
  bad.capacitance = 0.0;
  EXPECT_THROW(Supercapacitor{bad}, focv::PreconditionError);
}

}  // namespace
}  // namespace focv::power
