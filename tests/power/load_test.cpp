#include "power/load.hpp"

#include <gtest/gtest.h>

namespace focv::power {
namespace {

TEST(WsnLoad, AveragePowerMatchesBurstEnergy) {
  WsnLoad::Params p;
  p.sleep_power = 10e-6;
  p.sense_power = 1e-3;
  p.sense_duration = 10e-3;
  p.tx_power = 50e-3;
  p.tx_duration = 5e-3;
  p.report_period = 60.0;
  const WsnLoad load(p);
  const double expected = 10e-6 + (1e-3 * 10e-3 + 50e-3 * 5e-3) / 60.0;
  EXPECT_NEAR(load.average_power(), expected, 1e-12);
}

TEST(WsnLoad, InstantaneousProfileShape) {
  const WsnLoad load;  // defaults
  const auto& p = load.params();
  EXPECT_NEAR(load.power_at(p.sense_duration / 2), p.sense_power + p.sleep_power, 1e-12);
  EXPECT_NEAR(load.power_at(p.sense_duration + p.tx_duration / 2),
              p.tx_power + p.sleep_power, 1e-12);
  EXPECT_NEAR(load.power_at(p.report_period / 2), p.sleep_power, 1e-12);
  // Periodicity.
  EXPECT_NEAR(load.power_at(p.report_period + 1e-3), load.power_at(1e-3), 1e-12);
}

TEST(WsnLoad, AverageEqualsIntegralOfProfile) {
  const WsnLoad load;
  const double period = load.params().report_period;
  double integral = 0.0;
  const double dt = 1e-4;
  for (double t = 0.0; t < period; t += dt) integral += load.power_at(t) * dt;
  EXPECT_NEAR(integral / period, load.average_power(), load.average_power() * 0.01);
}

TEST(WsnLoad, BurstPhaseShiftsTheProfile) {
  WsnLoad::Params p;
  p.burst_phase = 45.0;
  const WsnLoad load(p);
  // The burst now starts at t = 45 s instead of t = 0.
  EXPECT_NEAR(load.power_at(45.0 + p.sense_duration / 2),
              p.sense_power + p.sleep_power, 1e-12);
  EXPECT_NEAR(load.power_at(45.0 + p.sense_duration + p.tx_duration / 2),
              p.tx_power + p.sleep_power, 1e-12);
  // Where the unshifted burst used to be, there is only sleep.
  EXPECT_NEAR(load.power_at(p.sense_duration / 2), p.sleep_power, 1e-12);
  // The average is phase-invariant.
  EXPECT_NEAR(load.average_power(), WsnLoad(WsnLoad::Params{}).average_power(), 1e-15);
}

TEST(WsnLoad, BurstPhaseWrapsIntoPeriod) {
  WsnLoad::Params p;
  const double period = p.report_period;
  p.burst_phase = period + 10.0;
  EXPECT_NEAR(WsnLoad(p).phase(), 10.0, 1e-9);
  p.burst_phase = -10.0;
  EXPECT_NEAR(WsnLoad(p).phase(), period - 10.0, 1e-9);
  // A wrapped phase produces the same profile as its canonical value.
  WsnLoad::Params canonical;
  canonical.burst_phase = 10.0;
  p.burst_phase = period + 10.0;
  const WsnLoad wrapped(p);
  const WsnLoad reference(canonical);
  for (double t = 0.0; t < period; t += period / 97.0) {
    EXPECT_NEAR(wrapped.power_at(t), reference.power_at(t), 1e-12) << t;
  }
}

TEST(WsnLoad, DefaultPhasePreservesHistoricalProfile) {
  // burst_phase = 0 must be bit-identical to the pre-phase behaviour:
  // burst at the period start.
  const WsnLoad load;
  EXPECT_EQ(load.params().burst_phase, 0.0);
  EXPECT_EQ(load.phase(), 0.0);
  const auto& p = load.params();
  EXPECT_EQ(load.power_at(0.0), p.sense_power + p.sleep_power);
}

TEST(WsnLoad, NextBurstEdgeWalksTheProfile) {
  WsnLoad::Params p;
  p.sense_duration = 10e-3;
  p.tx_duration = 5e-3;
  p.report_period = 60.0;
  const WsnLoad load(p);
  // From inside the sense window: sense->tx edge, then tx end, then the
  // next burst start — exactly the piecewise-constant boundaries the
  // event engine integrates between.
  EXPECT_NEAR(load.next_burst_edge(0.0), 10e-3, 1e-12);
  EXPECT_NEAR(load.next_burst_edge(10e-3), 15e-3, 1e-12);
  EXPECT_NEAR(load.next_burst_edge(15e-3), 60.0, 1e-12);
  EXPECT_NEAR(load.next_burst_edge(30.0), 60.0, 1e-12);
  // Strictly-greater contract: asking at an edge returns the next one.
  EXPECT_GT(load.next_burst_edge(60.0), 60.0);
  EXPECT_NEAR(load.next_burst_edge(60.0), 60.0 + 10e-3, 1e-9);
}

TEST(WsnLoad, NextBurstEdgeHonoursPhase) {
  WsnLoad::Params p;
  p.sense_duration = 10e-3;
  p.tx_duration = 5e-3;
  p.report_period = 60.0;
  p.burst_phase = 20.0;
  const WsnLoad load(p);
  EXPECT_NEAR(load.next_burst_edge(0.0), 20.0, 1e-9);  // the burst start itself
  EXPECT_NEAR(load.next_burst_edge(20.0), 20.0 + 10e-3, 1e-9);
  EXPECT_NEAR(load.next_burst_edge(20.0 + 12e-3), 20.0 + 15e-3, 1e-9);
  // The profile repeats with the period, phase included.
  EXPECT_NEAR(load.next_burst_edge(60.0 + 21.0), 2.0 * 60.0 + 20.0, 1e-9);
}

TEST(WsnLoad, RejectsBurstLongerThanPeriod) {
  WsnLoad::Params p;
  p.sense_duration = 40.0;
  p.tx_duration = 30.0;
  p.report_period = 60.0;
  EXPECT_THROW(WsnLoad{p}, focv::PreconditionError);
}

}  // namespace
}  // namespace focv::power
