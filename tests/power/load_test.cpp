#include "power/load.hpp"

#include <gtest/gtest.h>

namespace focv::power {
namespace {

TEST(WsnLoad, AveragePowerMatchesBurstEnergy) {
  WsnLoad::Params p;
  p.sleep_power = 10e-6;
  p.sense_power = 1e-3;
  p.sense_duration = 10e-3;
  p.tx_power = 50e-3;
  p.tx_duration = 5e-3;
  p.report_period = 60.0;
  const WsnLoad load(p);
  const double expected = 10e-6 + (1e-3 * 10e-3 + 50e-3 * 5e-3) / 60.0;
  EXPECT_NEAR(load.average_power(), expected, 1e-12);
}

TEST(WsnLoad, InstantaneousProfileShape) {
  const WsnLoad load;  // defaults
  const auto& p = load.params();
  EXPECT_NEAR(load.power_at(p.sense_duration / 2), p.sense_power + p.sleep_power, 1e-12);
  EXPECT_NEAR(load.power_at(p.sense_duration + p.tx_duration / 2),
              p.tx_power + p.sleep_power, 1e-12);
  EXPECT_NEAR(load.power_at(p.report_period / 2), p.sleep_power, 1e-12);
  // Periodicity.
  EXPECT_NEAR(load.power_at(p.report_period + 1e-3), load.power_at(1e-3), 1e-12);
}

TEST(WsnLoad, AverageEqualsIntegralOfProfile) {
  const WsnLoad load;
  const double period = load.params().report_period;
  double integral = 0.0;
  const double dt = 1e-4;
  for (double t = 0.0; t < period; t += dt) integral += load.power_at(t) * dt;
  EXPECT_NEAR(integral / period, load.average_power(), load.average_power() * 0.01);
}

TEST(WsnLoad, RejectsBurstLongerThanPeriod) {
  WsnLoad::Params p;
  p.sense_duration = 40.0;
  p.tx_duration = 30.0;
  p.report_period = 60.0;
  EXPECT_THROW(WsnLoad{p}, focv::PreconditionError);
}

}  // namespace
}  // namespace focv::power
