#include "mppt/registry.hpp"

#include <memory>
#include <string>

#include <gtest/gtest.h>

#include "core/focv_system.hpp"
#include "env/profiles.hpp"
#include "mppt/baselines.hpp"
#include "mppt/focv_sample_hold.hpp"
#include "mppt/gradient_descent.hpp"
#include "pv/cell_library.hpp"
#include "runtime/sweep.hpp"

namespace focv::mppt {
namespace {

// The "focv" entry lives in focv_core (layering: core depends on mppt),
// so tests pull it in explicitly rather than trusting static-init link
// order of the archive member.
const Registry& registry() {
  core::register_paper_controller();
  return Registry::instance();
}

// Expect a SpecError whose message contains every listed fragment; the
// fail-fast satellite requires the offending token to be quoted.
template <typename Fn>
void expect_spec_error(Fn&& fn, std::initializer_list<const char*> fragments) {
  try {
    fn();
    FAIL() << "expected SpecError";
  } catch (const SpecError& e) {
    const std::string msg = e.what();
    for (const char* fragment : fragments) {
      EXPECT_NE(msg.find(fragment), std::string::npos)
          << "message \"" << msg << "\" missing \"" << fragment << "\"";
    }
  }
}

TEST(SpecGrammar, WhitespaceTolerant) {
  const std::string tight = registry().canonical("focv[k=0.55,hold=10s]");
  const std::string loose = registry().canonical("  focv [ k = 0.55 , hold = 10 s ]  ");
  EXPECT_EQ(tight, loose);
  EXPECT_EQ(tight, "focv[k=0.55,hold=10s]");
}

TEST(SpecGrammar, NameOnlyAndEmptyBracketsAreEquivalent) {
  EXPECT_EQ(registry().canonical("focv"), "focv");
  EXPECT_EQ(registry().canonical("focv[]"), "focv");
  EXPECT_EQ(registry().canonical(" focv "), "focv");
}

TEST(SpecGrammar, DuplicateKeyRejected) {
  expect_spec_error([] { (void)registry().resolve("focv[k=0.5,k=0.6]"); },
                    {"duplicate", "\"k\""});
}

TEST(SpecGrammar, UnknownParameterQuotesTokenAndListsValidKeys) {
  expect_spec_error([] { (void)registry().resolve("pando[stepp=10mV]"); },
                    {"unknown parameter", "\"stepp\"", "\"pando\"", "step", "period"});
}

TEST(SpecGrammar, UnknownControllerListsRegisteredNames) {
  expect_spec_error([] { (void)registry().resolve("bogus"); },
                    {"unknown controller", "\"bogus\"", "registered:", "focv",
                     "graddesc", "pando"});
}

TEST(SpecGrammar, MalformedSpecsRejected) {
  expect_spec_error([] { (void)registry().resolve("focv[k=0.5"); }, {"']'"});
  expect_spec_error([] { (void)registry().resolve("focv[k]"); }, {"\"k\"", "key=value"});
  expect_spec_error([] { (void)registry().resolve("focv[k=]"); }, {"empty value", "\"k\""});
  expect_spec_error([] { (void)registry().resolve("Focv"); }, {"invalid controller name"});
  expect_spec_error([] { (void)registry().resolve(""); }, {"empty spec"});
}

TEST(SpecGrammar, BadUnitSuffixNamesTheValidOnes) {
  expect_spec_error([] { (void)registry().resolve("focv[hold=10kg]"); },
                    {"\"hold\"", "ms", "min"});
}

TEST(SpecUnits, SuffixesScaleToBaseSi) {
  EXPECT_DOUBLE_EQ(registry().resolve("pando[step=10mV]").value("step"), 0.01);
  EXPECT_DOUBLE_EQ(registry().resolve("focv[hold=2min]").value("hold"), 120.0);
  EXPECT_DOUBLE_EQ(registry().resolve("focv[pulse=5000us]").value("pulse"), 5e-3);
  EXPECT_DOUBLE_EQ(registry().resolve("focv[min_lux=2klux]").value("min_lux"), 2000.0);
  EXPECT_DOUBLE_EQ(registry().resolve("pando[overhead=250uW]").value("overhead"),
                   250e-6);
  // A bare number is the base SI unit.
  EXPECT_DOUBLE_EQ(registry().resolve("focv[hold=69]").value("hold"), 69.0);
}

TEST(SpecUnits, CanonicalPicksTightestSuffixNeverMinOrHours) {
  EXPECT_EQ(registry().canonical("pando[step=0.01V]"), "pando[step=10mV]");
  EXPECT_EQ(registry().canonical("focv[pulse=0.005s]"), "focv[pulse=5ms]");
  // min/h parse but are never emitted: factors > 1 stay in seconds.
  EXPECT_EQ(registry().canonical("focv[hold=2min]"), "focv[hold=120s]");
}

TEST(SpecCanonical, ExplicitDefaultIsElided) {
  // hold's catalog default is 69 s; restating it must not change the key.
  EXPECT_EQ(registry().canonical("focv[hold=69s]"), "focv");
  EXPECT_EQ(registry().canonical("focv[hold=69000ms]"), "focv");
}

TEST(SpecCanonical, CatalogOrderIndependentOfInputOrder) {
  EXPECT_EQ(registry().canonical("focv[hold=10s,k=0.55]"), "focv[k=0.55,hold=10s]");
}

TEST(SpecCanonical, RoundTripIsAFixedPoint) {
  const char* specs[] = {"focv",
                         "focv[k=0.55,hold=2min,pulse=10ms]",
                         "pando[step=10mV,period=5s]",
                         "inccond[step=5mV]",
                         "graddesc[lr=0.05,decay=0.9]",
                         "periodic[period=50ms]",
                         "pilot[k=0.62]",
                         "fixed[v=3.3V]",
                         "direct[drop=300mV]"};
  for (const char* spec : specs) {
    const std::string once = registry().canonical(spec);
    EXPECT_EQ(registry().canonical(once), once) << "spec: " << spec;
    EXPECT_EQ(registry().resolve(spec).spec(), once) << "spec: " << spec;
  }
}

TEST(SpecValidation, OutOfRangeQuotesTokenAndBounds) {
  expect_spec_error([] { (void)registry().resolve("focv[k=2]"); },
                    {"\"k=2\"", "out of range"});
  expect_spec_error([] { (void)registry().resolve("pando[step=-5mV]"); }, {"out of range"});
}

TEST(SpecValidation, UnsetParametersCarryCatalogDefaults) {
  const ResolvedSpec r = registry().resolve("graddesc[lr=0.1]");
  EXPECT_TRUE(r.is_set("lr"));
  EXPECT_DOUBLE_EQ(r.value("lr"), 0.1);
  EXPECT_FALSE(r.is_set("decay"));
  EXPECT_DOUBLE_EQ(r.value("decay"), 0.9);
  EXPECT_DOUBLE_EQ(r.value("period"), 1.0);
}

TEST(RegistryApi, ListsBuiltinsAndPrintsCatalog) {
  const auto names = registry().names();
  for (const char* expected :
       {"direct", "fixed", "focv", "graddesc", "inccond", "pando", "periodic",
        "photo", "pilot"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end())
        << expected;
  }
  const std::string catalog = registry().catalog();
  EXPECT_NE(catalog.find("graddesc"), std::string::npos);
  EXPECT_NE(catalog.find("lr"), std::string::npos);
  EXPECT_NE(catalog.find("mV"), std::string::npos);
}

TEST(RegistryApi, MakeAppliesParametersToTheController) {
  const auto graddesc = registry().make("graddesc");
  ASSERT_NE(graddesc, nullptr);
  EXPECT_DOUBLE_EQ(graddesc->overhead_power(), 120e-6);
  EXPECT_NE(dynamic_cast<GradientDescentController*>(graddesc.get()), nullptr);

  const auto pando = registry().make("pando[overhead=2mW]");
  EXPECT_DOUBLE_EQ(pando->overhead_power(), 2e-3);
}

TEST(RegistryApi, ComplexityMetadataCoversEveryEntry) {
  for (const std::string& name : registry().names()) {
    const Registry::Entry& e = registry().entry(name);
    EXPECT_GE(e.ops_per_decision, 0) << name;
    if (!e.period_key.empty()) {
      const ResolvedSpec r = registry().resolve(name);
      EXPECT_GT(r.value(e.period_key), 0.0) << name;
    }
  }
  // The paper's analog S&H burns no MCU ops; the digital trackers do.
  EXPECT_EQ(registry().entry("focv").ops_per_decision, 0);
  EXPECT_GT(registry().entry("graddesc").ops_per_decision,
            registry().entry("pando").ops_per_decision);
}

// The api_redesign contract: a sweep built through spec strings is
// byte-identical (CSV included) to one built the legacy way from
// hand-constructed controllers, and the registry axis label is the
// canonical spec.
TEST(RegistrySweep, ByteEqualCsvAgainstLegacyConstruction) {
  const env::LightTrace trace =
      env::constant_light(800.0, 0.0, 1800.0);

  runtime::SweepSpec via_registry;
  via_registry.add_cell("AM-1815", pv::sanyo_am1815());
  via_registry.add_controller("focv");
  via_registry.add_controller("pando[step=10mV]");
  via_registry.add_scenario("office", trace);
  via_registry.base.storage.initial_voltage = 3.0;
  via_registry.base.load.report_period = 300.0;

  runtime::SweepSpec legacy;
  legacy.add_cell("AM-1815", pv::sanyo_am1815());
  legacy.add_controller(
      "focv", std::make_unique<FocvSampleHoldController>(core::make_paper_controller()));
  HillClimbingController::Params pando_params;
  pando_params.voltage_step = 0.01;
  legacy.add_controller("pando[step=10mV]",
                        std::make_unique<HillClimbingController>(pando_params));
  legacy.add_scenario("office", trace);
  legacy.base.storage.initial_voltage = 3.0;
  legacy.base.load.report_period = 300.0;

  EXPECT_EQ(via_registry.controllers[0].name, "focv");
  EXPECT_EQ(via_registry.controllers[1].name, "pando[step=10mV]");

  const runtime::SweepResult a = runtime::run_sweep(via_registry, {});
  const runtime::SweepResult b = runtime::run_sweep(legacy, {});
  EXPECT_EQ(a.to_csv(), b.to_csv());
  EXPECT_FALSE(a.to_csv().empty());
}

TEST(RegistrySweep, SameSpecStringYieldsDeterministicCsv) {
  const env::LightTrace trace = env::constant_light(500.0, 0.0, 1200.0);
  const auto build = [&trace]() {
    runtime::SweepSpec spec;
    spec.add_cell("AM-1815", pv::sanyo_am1815());
    spec.add_controller("graddesc[lr=0.1,period=2s]");
    spec.add_scenario("office", trace);
    spec.base.load.report_period = 300.0;
    return runtime::run_sweep(spec, {}).to_csv();
  };
  EXPECT_EQ(build(), build());
}

}  // namespace
}  // namespace focv::mppt
