#include "mppt/baselines.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "pv/cell_library.hpp"

namespace focv::mppt {
namespace {

// Closed-loop helper: run a controller against the real AM-1815 curve
// and return the final operating voltage.
template <typename Controller>
double run_against_cell(Controller& ctl, double lux, double seconds) {
  pv::Conditions c;
  c.illuminance_lux = lux;
  const auto& cell = pv::sanyo_am1815();
  SensedInputs s;
  s.dt = 1.0;
  double v_cmd = 0.0;
  for (double t = 0.0; t < seconds; t += 1.0) {
    s.time = t;
    s.voc = cell.open_circuit_voltage(c);
    s.pilot_voc = s.voc;
    s.illuminance_estimate = lux;
    s.prev_voltage = v_cmd;
    s.prev_power = cell.power_at(v_cmd, c);
    v_cmd = ctl.step(s).pv_voltage;
  }
  return v_cmd;
}

TEST(HillClimbing, ConvergesToMpp) {
  HillClimbingController ctl;
  pv::Conditions c;
  c.illuminance_lux = 2000.0;
  const double v = run_against_cell(ctl, 2000.0, 120.0);
  const double vmpp = pv::sanyo_am1815().maximum_power_point(c).voltage;
  EXPECT_NEAR(v, vmpp, 3.0 * 0.05);  // within a few perturbation steps
  // Harvest at the final point is near-optimal.
  EXPECT_GT(pv::sanyo_am1815().tracking_efficiency(v, c), 0.98);
}

TEST(HillClimbing, OscillatesAroundMppInSteadyState) {
  HillClimbingController ctl;
  pv::Conditions c;
  c.illuminance_lux = 2000.0;
  (void)run_against_cell(ctl, 2000.0, 150.0);
  // Collect the next commands: they must dither, not settle.
  const auto& cell = pv::sanyo_am1815();
  SensedInputs s;
  s.dt = 1.0;
  double v_cmd = 0.0;
  double v_min = 1e9, v_max = -1e9;
  for (double t = 150.0; t < 170.0; t += 1.0) {
    s.time = t;
    s.prev_voltage = v_cmd;
    s.prev_power = cell.power_at(v_cmd, c);
    v_cmd = ctl.step(s).pv_voltage;
    v_min = std::min(v_min, v_cmd);
    v_max = std::max(v_max, v_cmd);
  }
  EXPECT_GT(v_max - v_min, 0.04);  // at least one step of dither
}

TEST(HillClimbing, TracksIlluminanceChange) {
  HillClimbingController ctl;
  (void)run_against_cell(ctl, 2000.0, 120.0);
  // Light drops: the hill climber walks to the new MPP.
  pv::Conditions dim;
  dim.illuminance_lux = 300.0;
  const auto& cell = pv::sanyo_am1815();
  SensedInputs s;
  s.dt = 1.0;
  double v_cmd = 0.0;
  for (double t = 120.0; t < 400.0; t += 1.0) {
    s.time = t;
    s.prev_voltage = v_cmd;
    s.prev_power = cell.power_at(v_cmd, dim);
    v_cmd = ctl.step(s).pv_voltage;
  }
  EXPECT_GT(cell.tracking_efficiency(v_cmd, dim), 0.95);
}

TEST(IncrementalConductance, ConvergesToMpp) {
  IncrementalConductanceController ctl;
  pv::Conditions c;
  c.illuminance_lux = 2000.0;
  const double v = run_against_cell(ctl, 2000.0, 200.0);
  EXPECT_GT(pv::sanyo_am1815().tracking_efficiency(v, c), 0.97);
}

TEST(PilotCell, AppliesKAndMismatch) {
  PilotCellFocvController::Params p;
  p.k = 0.6;
  p.mismatch = 0.95;
  PilotCellFocvController ctl(p);
  SensedInputs s;
  s.pilot_voc = 5.0;
  EXPECT_NEAR(ctl.step(s).pv_voltage, 0.6 * 5.0 * 0.95, 1e-9);
  EXPECT_DOUBLE_EQ(ctl.step(s).disconnect_fraction, 0.0);  // never disconnects
}

TEST(Photodetector, CalibratedLawInterpolates) {
  auto p = PhotodetectorController::calibrate(500.0, 3.18, 2000.0, 3.21);
  p.sensor_gain_error = 1.0;
  PhotodetectorController ctl(p);
  SensedInputs s;
  s.illuminance_estimate = 500.0;
  EXPECT_NEAR(ctl.step(s).pv_voltage, 3.18, 1e-6);
  s.illuminance_estimate = 2000.0;
  EXPECT_NEAR(ctl.step(s).pv_voltage, 3.21, 1e-6);
  // Gain error shifts the estimate.
  auto p2 = p;
  p2.sensor_gain_error = 1.2;
  PhotodetectorController ctl2(p2);
  EXPECT_GT(ctl2.step(s).pv_voltage, 3.21);
}

TEST(PeriodicDisconnect, LargeDisconnectFraction) {
  PeriodicDisconnectFocvController ctl;
  SensedInputs s;
  s.voc = 5.0;
  const ControlOutput out = ctl.step(s);
  EXPECT_NEAR(out.pv_voltage, 3.0, 1e-9);
  EXPECT_NEAR(out.disconnect_fraction, 0.05, 1e-9);  // 5 ms / 100 ms
  // Orders of magnitude above the proposed technique's 39 ms / 69 s.
  EXPECT_GT(out.disconnect_fraction, 50.0 * (0.039 / 69.039));
}

TEST(FixedVoltage, ConstantCommand) {
  FixedVoltageController ctl;
  SensedInputs s;
  s.voc = 99.0;
  EXPECT_DOUBLE_EQ(ctl.step(s).pv_voltage, 3.0);
}

TEST(DirectConnection, FollowsStoreVoltage) {
  DirectConnectionController ctl;
  SensedInputs s;
  s.store_voltage = 2.5;
  EXPECT_NEAR(ctl.step(s).pv_voltage, 2.75, 1e-9);  // + diode drop
  EXPECT_DOUBLE_EQ(ctl.overhead_power(), 0.0);
}

TEST(Overheads, OrderingMatchesPaper) {
  // Proposed (25 uW) < fixed voltage (36 uW) < pilot cell (300 uW)
  // < hill climbing (1 mW) < photodetector (1.65 mW) < 100 ms FOCV (2 mW).
  FixedVoltageController fixed;
  PilotCellFocvController pilot;
  HillClimbingController po;
  PhotodetectorController photo;
  PeriodicDisconnectFocvController periodic;
  EXPECT_LT(fixed.overhead_power(), pilot.overhead_power());
  EXPECT_LT(pilot.overhead_power(), po.overhead_power());
  EXPECT_LT(po.overhead_power(), photo.overhead_power());
  EXPECT_LT(photo.overhead_power(), periodic.overhead_power());
}

TEST(Baselines, ResetRestoresInitialCommand) {
  HillClimbingController ctl;
  (void)run_against_cell(ctl, 2000.0, 50.0);
  ctl.reset();
  SensedInputs s;
  EXPECT_DOUBLE_EQ(ctl.step(s).pv_voltage, 2.0);  // start_voltage
}

}  // namespace
}  // namespace focv::mppt
