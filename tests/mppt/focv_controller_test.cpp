#include "mppt/focv_sample_hold.hpp"

#include <gtest/gtest.h>

#include "core/focv_system.hpp"

namespace focv::mppt {
namespace {

FocvSampleHoldController paper_controller() { return core::make_paper_controller(); }

SensedInputs inputs_at(double t, double dt, double voc) {
  SensedInputs s;
  s.time = t;
  s.dt = dt;
  s.voc = voc;
  return s;
}

TEST(FocvController, FirstStepSamplesAndCommandsKv) {
  FocvSampleHoldController ctl = paper_controller();
  const ControlOutput out = ctl.step(inputs_at(0.0, 1.0, 5.44));
  // HELD ~ 0.298 * Voc; commanded PV voltage = HELD / alpha ~ 0.596 * Voc.
  EXPECT_NEAR(out.pv_voltage, 0.596 * 5.44, 0.05);
  EXPECT_GT(out.disconnect_fraction, 0.0);
}

TEST(FocvController, HoldsBetweenSamples) {
  FocvSampleHoldController ctl = paper_controller();
  (void)ctl.step(inputs_at(0.0, 1.0, 5.44));
  // Light changes but no new sample for 69 s: command barely moves
  // (droop only).
  const ControlOutput out = ctl.step(inputs_at(1.0, 1.0, 4.0));
  EXPECT_NEAR(out.pv_voltage, 0.596 * 5.44, 0.05);
}

TEST(FocvController, ResamplesAfterHoldPeriod) {
  FocvSampleHoldController ctl = paper_controller();
  (void)ctl.step(inputs_at(0.0, 1.0, 5.44));
  double t = 1.0;
  ControlOutput out;
  for (; t < 75.0; t += 1.0) {
    out = ctl.step(inputs_at(t, 1.0, 4.978));
  }
  EXPECT_NEAR(out.pv_voltage, 0.596 * 4.978, 0.05);
}

TEST(FocvController, CoarseStepsStillSampleEachPeriod) {
  // dt of 10 minutes covers several astable periods.
  FocvSampleHoldController ctl = paper_controller();
  const ControlOutput out = ctl.step(inputs_at(0.0, 600.0, 5.0));
  EXPECT_GT(out.pv_voltage, 0.0);
  // ~8.7 pulses in 600 s, each 39 ms: fraction ~ 5.6e-4.
  EXPECT_NEAR(out.disconnect_fraction, 600.0 / 69.039 * 0.039 / 600.0, 2e-4);
}

TEST(FocvController, DisconnectFractionMatchesDuty) {
  FocvSampleHoldController ctl = paper_controller();
  double total = 0.0;
  for (double t = 0.0; t < 690.0; t += 1.0) {
    total += ctl.step(inputs_at(t, 1.0, 5.0)).disconnect_fraction;
  }
  // 10 samples of 39 ms over 690 s.
  EXPECT_NEAR(total * 1.0 / 690.0, 0.039 / 69.039, 2e-4);
}

TEST(FocvController, InactiveUntilValidSample) {
  FocvSampleHoldController ctl = paper_controller();
  EXPECT_FALSE(ctl.active(0.0));
  // Sampling a dead cell (Voc 0) keeps ACTIVE low and the command at 0.
  const ControlOutput out = ctl.step(inputs_at(0.0, 1.0, 0.0));
  EXPECT_DOUBLE_EQ(out.pv_voltage, 0.0);
  EXPECT_FALSE(ctl.active(1.0));
}

TEST(FocvController, AverageCurrentMatchesPaper) {
  FocvSampleHoldController ctl = paper_controller();
  // Section IV-A: 7.6 uA average at 3.3 V.
  EXPECT_NEAR(ctl.average_current(), 7.6e-6, 0.15e-6);
  EXPECT_NEAR(ctl.overhead_power(), 7.6e-6 * 3.3, 0.5e-6);
}

TEST(FocvController, ResetClearsHold) {
  FocvSampleHoldController ctl = paper_controller();
  (void)ctl.step(inputs_at(0.0, 1.0, 5.0));
  ctl.reset();
  EXPECT_FALSE(ctl.active(100.0));
  const ControlOutput out = ctl.step(inputs_at(0.0, 1.0, 5.0));
  EXPECT_GT(out.pv_voltage, 0.0);  // samples again from t = 0
}

TEST(FocvController, MinimumLuxReported) {
  FocvSampleHoldController ctl = paper_controller();
  EXPECT_GT(ctl.minimum_operating_lux(), 0.0);
  EXPECT_LE(ctl.minimum_operating_lux(), 200.0);
}

}  // namespace
}  // namespace focv::mppt
