// Correctness contract of the event-driven macro-stepper (focv::sched):
// for every supported configuration, NodeConfig::stepper = kEvent must
// reproduce the fixed-step reference trajectory's energy accounting
// within 0.1 % while taking at least an order of magnitude fewer steps.
// The fixed path is the ground truth; these tests are what licenses the
// fleet/sweep tiers to run on events by default-compatible opt-in.
#include <algorithm>
#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "core/focv_system.hpp"
#include "env/profiles.hpp"
#include "fleet/fleet.hpp"
#include "mppt/baselines.hpp"
#include "node/harvester_node.hpp"
#include "pv/cell_library.hpp"

namespace focv {
namespace {

constexpr double kRelBound = 1e-3;  // the 0.1 % equivalence contract

double rel(double a, double b) {
  const double d = std::abs(a - b);
  const double m = std::max(std::abs(a), std::abs(b));
  return m > 1e-12 ? d / m : 0.0;
}

node::NodeConfig base_config() {
  node::NodeConfig cfg;
  cfg.use_cell(pv::sanyo_am1815());
  cfg.use_controller(core::make_paper_controller());
  cfg.storage.initial_voltage = 3.0;
  return cfg;
}

struct Pair {
  node::NodeReport fixed;
  node::NodeReport event;
};

Pair run_both(const env::LightTrace& trace, node::NodeConfig cfg) {
  Pair p;
  cfg.stepper = node::Stepper::kFixed;
  p.fixed = node::simulate_node(trace, cfg);
  cfg.stepper = node::Stepper::kEvent;
  p.event = node::simulate_node(trace, cfg);
  return p;
}

void expect_equivalent(const Pair& p, double min_compression) {
  EXPECT_LE(rel(p.fixed.harvested_energy, p.event.harvested_energy), kRelBound);
  EXPECT_LE(rel(p.fixed.delivered_energy, p.event.delivered_energy), kRelBound);
  EXPECT_LE(rel(p.fixed.overhead_energy, p.event.overhead_energy), kRelBound);
  EXPECT_LE(rel(p.fixed.load_energy_served, p.event.load_energy_served), kRelBound);
  EXPECT_LE(rel(p.fixed.ideal_mpp_energy, p.event.ideal_mpp_energy), kRelBound);
  EXPECT_LE(std::abs(p.fixed.final_store_voltage - p.event.final_store_voltage), 5e-3);
  // The point of the engine: the same day in far fewer steps.
  ASSERT_GT(p.event.steps, 0u);
  EXPECT_GE(static_cast<double>(p.fixed.steps) / static_cast<double>(p.event.steps),
            min_compression);
  EXPECT_GT(p.event.events, 0u);
  EXPECT_EQ(p.fixed.events, 0u);  // the fixed path reports no events
}

TEST(SchedEquivalence, IndoorConstant200Lux) {
  const env::LightTrace trace = env::constant_light(200.0, 0.0, 86400.0);
  const Pair p = run_both(trace, base_config());
  expect_equivalent(p, 10.0);
}

TEST(SchedEquivalence, OfficeDay) {
  const env::LightTrace trace = env::office_desk_mixed(env::OfficeDayParams{});
  const Pair p = run_both(trace, base_config());
  expect_equivalent(p, 10.0);
  // Brown-out accounting must agree too (the office day has none, which
  // must hold on both paths).
  EXPECT_NEAR(p.fixed.brownout_time, p.event.brownout_time, 2.0);
}

TEST(SchedEquivalence, OutdoorDay) {
  const env::LightTrace trace = env::outdoor_day({});
  const Pair p = run_both(trace, base_config());
  expect_equivalent(p, 10.0);
}

TEST(SchedEquivalence, ColdStartFromDeadStore) {
  // A dead store + cold-start supervisor exercises the engine's
  // certification fallback: until the supervisor fires, segments run
  // step by step and the reported cold-start instant must be exact. The
  // per-step fallback means compression is modest here by design — the
  // contract is correctness, not speed.
  env::LightTrace trace = env::office_desk_mixed(env::OfficeDayParams{});
  node::NodeConfig cfg = base_config();
  cfg.coldstart = power::ColdStartCircuit::Params{};
  cfg.storage.initial_voltage = 0.0;
  const Pair p = run_both(trace, cfg);
  expect_equivalent(p, 1.5);
  EXPECT_DOUBLE_EQ(p.fixed.coldstart_time, p.event.coldstart_time);
  EXPECT_NEAR(p.fixed.brownout_time, p.event.brownout_time, 2.0);
}

TEST(SchedEquivalence, BaselineControllersStayInContract) {
  const env::LightTrace trace = env::office_desk_mixed(env::OfficeDayParams{});
  node::NodeConfig fixedv = base_config();
  fixedv.use_controller(mppt::FixedVoltageController(mppt::FixedVoltageController::Params{}));
  expect_equivalent(run_both(trace, fixedv), 10.0);

  node::NodeConfig direct = base_config();
  direct.use_controller(
      mppt::DirectConnectionController(mppt::DirectConnectionController::Params{}));
  expect_equivalent(run_both(trace, direct), 10.0);
}

fleet::FleetSpec fleet_spec(node::Stepper stepper) {
  static const auto trace = std::make_shared<const env::LightTrace>(
      env::office_desk_mixed(env::OfficeDayParams{}));
  fleet::FleetSpec fs;
  fs.node_count = 16;
  fs.use_cell(pv::sanyo_am1815());
  fs.add_environment("office", trace);
  fs.add_policy(fleet::MpptPolicy::kFocvSampleHold, 0.5);
  fs.add_policy(fleet::MpptPolicy::kFixedVoltage, 0.25);
  fs.add_policy(fleet::MpptPolicy::kDirectConnection, 0.25);
  fs.base.storage.initial_voltage = 3.0;
  fs.base.load.report_period = 120.0;
  fs.base.stepper = stepper;
  return fs;
}

TEST(SchedEquivalence, MixedPolicyFleetChunk) {
  fleet::FleetOptions opt;
  opt.jobs = 1;
  const fleet::FleetReport fixed = fleet::run_fleet(fleet_spec(node::Stepper::kFixed), opt);
  const fleet::FleetReport event = fleet::run_fleet(fleet_spec(node::Stepper::kEvent), opt);
  ASSERT_EQ(fixed.nodes_ok, event.nodes_ok);
  EXPECT_LE(rel(fixed.harvested_j, event.harvested_j), kRelBound);
  EXPECT_LE(rel(fixed.delivered_j, event.delivered_j), kRelBound);
  EXPECT_LE(rel(fixed.ideal_mpp_j, event.ideal_mpp_j), kRelBound);
  EXPECT_LE(rel(fixed.load_served_j, event.load_served_j), kRelBound);
  EXPECT_NEAR(fixed.mean_tracking_efficiency(), event.mean_tracking_efficiency(), 1e-3);
  EXPECT_EQ(fixed.energy_neutral_nodes, event.energy_neutral_nodes);
  ASSERT_GT(event.steps, 0u);
  EXPECT_GE(static_cast<double>(fixed.steps) / static_cast<double>(event.steps), 10.0);
}

TEST(SchedEquivalence, FleetEventCountIsDeterministicAcrossJobs) {
  // events is part of the report contract: a config + trace determines
  // it exactly, so the serial and threaded fleet paths must agree to the
  // last event.
  fleet::FleetOptions serial;
  serial.jobs = 1;
  fleet::FleetOptions threaded;
  threaded.jobs = 2;
  const fleet::FleetReport a = fleet::run_fleet(fleet_spec(node::Stepper::kEvent), serial);
  const fleet::FleetReport b = fleet::run_fleet(fleet_spec(node::Stepper::kEvent), threaded);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.steps, b.steps);
  EXPECT_EQ(a.model_evals, b.model_evals);
  EXPECT_DOUBLE_EQ(a.harvested_j, b.harvested_j);
  EXPECT_DOUBLE_EQ(a.delivered_j, b.delivered_j);
  EXPECT_GT(a.events, 0u);
}

}  // namespace
}  // namespace focv
