#include "analysis/sampling_error.hpp"

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "common/require.hpp"
#include "common/rng.hpp"
#include "pv/cell_library.hpp"

namespace focv::analysis {
namespace {

TEST(Eq2, ZeroForConstantTrace) {
  const std::vector<double> x(1000, 3.14);
  EXPECT_DOUBLE_EQ(worst_case_mean_error(x, 60), 0.0);
}

TEST(Eq2, SinglePeriodSampleIsZero) {
  std::vector<double> x;
  for (int i = 0; i < 100; ++i) x.push_back(i * 0.1);
  EXPECT_DOUBLE_EQ(worst_case_mean_error(x, 1), 0.0);
}

TEST(Eq2, LinearRampGivesSlopeTimesWindow) {
  // For x_n = s*n, the window range is s*(p-1) for every window.
  std::vector<double> x;
  for (int i = 0; i < 500; ++i) x.push_back(0.01 * i);
  EXPECT_NEAR(worst_case_mean_error(x, 10), 0.01 * 9, 1e-12);
}

TEST(Eq2, MonotoneInPeriod) {
  Rng rng(99);
  std::vector<double> x;
  double v = 0.0;
  for (int i = 0; i < 5000; ++i) {
    v += rng.gaussian(0.0, 0.01);
    x.push_back(v);
  }
  double prev = 0.0;
  for (const std::size_t p : {2u, 5u, 10u, 30u, 60u, 120u}) {
    const double e = worst_case_mean_error(x, p);
    EXPECT_GE(e, prev);
    prev = e;
  }
}

TEST(Eq2, MatchesBruteForce) {
  Rng rng(7);
  std::vector<double> x;
  for (int i = 0; i < 300; ++i) x.push_back(rng.uniform(-1.0, 1.0));
  for (const std::size_t p : {1u, 3u, 7u, 50u}) {
    double brute = 0.0;
    for (std::size_t n = 0; n + p <= x.size(); ++n) {
      const double mx = *std::max_element(x.begin() + n, x.begin() + n + p);
      const double mn = *std::min_element(x.begin() + n, x.begin() + n + p);
      brute += mx - mn;
    }
    brute /= static_cast<double>(x.size() - p + 1);
    EXPECT_NEAR(worst_case_mean_error(x, p), brute, 1e-12) << "p=" << p;
  }
}

TEST(Eq2, RejectsBadPeriod) {
  const std::vector<double> x(10, 0.0);
  EXPECT_THROW(worst_case_mean_error(x, 0), PreconditionError);
  EXPECT_THROW(worst_case_mean_error(x, 11), PreconditionError);
}

TEST(Eq2, ErrorVsPeriodSweep) {
  Rng rng(3);
  std::vector<double> x;
  double v = 0.0;
  for (int i = 0; i < 2000; ++i) {
    v += rng.gaussian(0.0, 0.005);
    x.push_back(v);
  }
  const auto sweep = error_vs_period(x, 1.0, {10.0, 60.0, 300.0});
  ASSERT_EQ(sweep.size(), 3u);
  EXPECT_LT(sweep[0].error, sweep[1].error);
  EXPECT_LT(sweep[1].error, sweep[2].error);
  EXPECT_DOUBLE_EQ(sweep[1].period, 60.0);
}

TEST(MppMapping, ScalesByK) {
  EXPECT_NEAR(mpp_voltage_error(12.7e-3, 0.6), 7.62e-3, 1e-5);
  EXPECT_NEAR(mpp_voltage_error(24.1e-3, 0.61), 14.7e-3, 2e-4);
}

TEST(EfficiencyLoss, ZeroAtMppGrowsAway) {
  const auto& cell = pv::sanyo_am1815();
  pv::Conditions c;
  c.illuminance_lux = 1000.0;
  EXPECT_NEAR(efficiency_loss_at_offset(cell, c, 0.0), 0.0, 1e-9);
  const double small = efficiency_loss_at_offset(cell, c, 0.01);
  const double large = efficiency_loss_at_offset(cell, c, 0.3);
  EXPECT_GT(large, small);
  EXPECT_GT(large, 0.0);
}

TEST(EfficiencyLoss, SmallHoldErrorCostsUnderOnePercent) {
  // Section II-B: a ~15 mV MPP-voltage error costs < 1%.
  const auto& cell = pv::sanyo_am1815();
  pv::Conditions c;
  c.illuminance_lux = 1000.0;
  EXPECT_LT(efficiency_loss_at_offset(cell, c, 15e-3), 0.01);
}

}  // namespace
}  // namespace focv::analysis
