// The lane primitives' bit-exactness contract (common/simd.hpp): every
// lane of every op must be the scalar IEEE-754 double op, select must
// be a pure bit blend, and the derived helpers must mirror their std::
// counterparts — the fleet kernel byte-identity proof stands on these.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>

#include "common/simd.hpp"

namespace focv::simd {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
const double kNan = std::numeric_limits<double>::quiet_NaN();

double lane_bits_equal(double a, double b) {
  std::uint64_t ba = 0;
  std::uint64_t bb = 0;
  std::memcpy(&ba, &a, 8);
  std::memcpy(&bb, &b, 8);
  return ba == bb;
}

/// Awkward lane values: zeros of both signs, denormal, huge, Inf, NaN.
const double kVals[] = {0.0, -0.0, 1.0, -3.5, 5e-324, 1e300, -kInf, kNan};
static_assert(sizeof(kVals) / sizeof(kVals[0]) >= static_cast<std::size_t>(kLanes) ||
                  kLanes > 8,
              "test vector shorter than a lane block");

DVec awkward() { return load(kVals); }

TEST(Simd, BroadcastLoadStoreRoundtrip) {
  double out[kLanes];
  store(out, awkward());
  for (int l = 0; l < kLanes; ++l) {
    EXPECT_TRUE(lane_bits_equal(out[l], kVals[l])) << "lane " << l;
  }
  store(out, broadcast(-0.0));
  for (int l = 0; l < kLanes; ++l) EXPECT_TRUE(lane_bits_equal(out[l], -0.0));
}

TEST(Simd, ArithmeticIsPerLaneScalarIeee) {
  const DVec a = awkward();
  const DVec b = broadcast(3.0);
  for (int l = 0; l < kLanes; ++l) {
    const double x = kVals[l];
    EXPECT_TRUE(lane_bits_equal((a + b)[l], x + 3.0)) << l;
    EXPECT_TRUE(lane_bits_equal((a - b)[l], x - 3.0)) << l;
    EXPECT_TRUE(lane_bits_equal((a * b)[l], x * 3.0)) << l;
    EXPECT_TRUE(lane_bits_equal((a / b)[l], x / 3.0)) << l;
  }
}

TEST(Simd, ComparisonsMatchScalarIncludingNan) {
  const DVec a = awkward();
  const DVec b = broadcast(1.0);
  for (int l = 0; l < kLanes; ++l) {
    const double x = kVals[l];
    EXPECT_EQ((a < b).lane(l), x < 1.0) << l;
    EXPECT_EQ((a <= b).lane(l), x <= 1.0) << l;
    EXPECT_EQ((a > b).lane(l), x > 1.0) << l;
    EXPECT_EQ((a >= b).lane(l), x >= 1.0) << l;
    EXPECT_EQ((a == b).lane(l), x == 1.0) << l;
    EXPECT_EQ((a != b).lane(l), x != 1.0) << l;
  }
}

TEST(Simd, SelectIsAPureBitBlend) {
  // Masked-off lanes may hold NaN payloads or Inf; select must pass the
  // chosen lane's exact bits through untouched.
  const DVec a = awkward();
  const DVec b = broadcast(7.0);
  const MVec odd = [&] {
    double tmp[kLanes];
    for (int l = 0; l < kLanes; ++l) tmp[l] = (l % 2 == 1) ? 1.0 : 0.0;
    return load(tmp) > broadcast(0.5);
  }();
  const DVec r = select(odd, a, b);
  for (int l = 0; l < kLanes; ++l) {
    EXPECT_TRUE(lane_bits_equal(r[l], (l % 2 == 1) ? kVals[l] : 7.0)) << l;
  }
}

TEST(Simd, MaskOpsAndReductions) {
  const DVec a = awkward();
  const MVec none = a > broadcast(kInf);
  const MVec fin = (a >= broadcast(-kInf)) & (a <= broadcast(kInf));
  EXPECT_FALSE(any(none));
  EXPECT_TRUE(any(fin));
  EXPECT_FALSE(all(fin));  // the NaN lane fails both ordered compares
  EXPECT_TRUE(all(fin | ~fin));
  EXPECT_FALSE(any(fin & ~fin));
}

TEST(Simd, ClampMatchesStdClampBitwise) {
  // Includes the -0.0 / +0.0 edge: std::clamp(-0.0, 0.0, 1.0) keeps
  // -0.0 because neither comparison fires, and so must the lane form.
  const DVec lo = broadcast(0.0);
  const DVec hi = broadcast(1.0);
  const DVec r = clamp(awkward(), lo, hi);
  for (int l = 0; l < kLanes; ++l) {
    if (std::isnan(kVals[l])) continue;  // NaN clamp is caller UB in std too
    EXPECT_TRUE(lane_bits_equal(r[l], std::clamp(kVals[l], 0.0, 1.0))) << l;
  }
  EXPECT_TRUE(lane_bits_equal(clamp(broadcast(-0.0), lo, hi)[0], std::clamp(-0.0, 0.0, 1.0)));
}

TEST(Simd, FloorMatchesStdFloor) {
  const DVec r = floor(awkward());
  for (int l = 0; l < kLanes; ++l) {
    const double expect = std::floor(kVals[l]);
    if (std::isnan(expect)) {
      EXPECT_TRUE(std::isnan(r[l])) << l;
    } else {
      EXPECT_TRUE(lane_bits_equal(r[l], expect)) << l;
    }
  }
}

}  // namespace
}  // namespace focv::simd
