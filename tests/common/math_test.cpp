#include "common/math.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "common/require.hpp"
#include "common/rng.hpp"

namespace focv {
namespace {

TEST(BrentRoot, FindsSimpleRoot) {
  const double r = brent_root([](double x) { return x * x - 4.0; }, 0.0, 10.0);
  EXPECT_NEAR(r, 2.0, 1e-10);
}

TEST(BrentRoot, FindsTranscendentalRoot) {
  const double r = brent_root([](double x) { return std::cos(x) - x; }, 0.0, 1.0);
  EXPECT_NEAR(r, 0.7390851332151607, 1e-10);
}

TEST(BrentRoot, AcceptsRootAtEndpoint) {
  const double r = brent_root([](double x) { return x; }, 0.0, 1.0);
  EXPECT_DOUBLE_EQ(r, 0.0);
}

TEST(BrentRoot, ThrowsWhenNotBracketed) {
  EXPECT_THROW(brent_root([](double x) { return x * x + 1.0; }, -1.0, 1.0), PreconditionError);
}

TEST(BrentRoot, ThrowsOnBadInterval) {
  EXPECT_THROW(brent_root([](double x) { return x; }, 1.0, 0.0), PreconditionError);
}

TEST(BrentRoot, HandlesSteepExponential) {
  // Shape of a PV cell Voc solve: flat then exploding exponential.
  const double r = brent_root([](double v) { return 1e-4 - 1e-12 * std::exp(v / 0.29); }, 0.0,
                              10.0);
  EXPECT_NEAR(r, 0.29 * std::log(1e8), 1e-7);
}

// Property: Brent finds the root of randomised cubic polynomials with a
// known root inside the bracket.
class BrentPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(BrentPropertyTest, RandomCubicsWithKnownRoot) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 977 + 13);
  const double root = rng.uniform(-5.0, 5.0);
  const double a = rng.uniform(0.2, 3.0);
  const double b = rng.uniform(-1.0, 1.0);
  // f(x) = a*(x-root)^3 + b*(x-root): odd around root, monotone-ish when
  // b >= 0; choose b >= 0 to ensure a single real root.
  const double b_pos = std::abs(b);
  auto f = [&](double x) {
    const double d = x - root;
    return a * d * d * d + b_pos * d;
  };
  const double r = brent_root(f, root - 7.0, root + 9.0);
  EXPECT_NEAR(r, root, 1e-7);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BrentPropertyTest, ::testing::Range(0, 20));

TEST(NewtonRoot, QuadraticConvergence) {
  const double r = newton_root([](double x) { return x * x - 9.0; },
                               [](double x) { return 2.0 * x; }, 1.0, 0.0, 10.0);
  EXPECT_NEAR(r, 3.0, 1e-10);
}

TEST(NewtonRoot, FallsBackToBisectionOnZeroDerivative) {
  // df = 0 at x0: safeguard must still find the root.
  const double r = newton_root([](double x) { return x * x * x - 8.0; },
                               [](double x) { return 3.0 * x * x; }, 0.0, -1.0, 5.0);
  EXPECT_NEAR(r, 2.0, 1e-8);
}

TEST(NewtonRoot, RequiresBracket) {
  EXPECT_THROW(newton_root([](double x) { return x * x + 1.0; },
                           [](double x) { return 2.0 * x; }, 0.0, -1.0, 1.0),
               PreconditionError);
}

TEST(GoldenSection, FindsParabolaMaximum) {
  const double x = golden_section_maximize([](double v) { return -(v - 1.7) * (v - 1.7); }, -10.0,
                                           10.0);
  EXPECT_NEAR(x, 1.7, 1e-6);
}

TEST(GoldenSection, FindsPvStyleMppShape) {
  // P(v) = v * (1 - exp((v-5)/0.3)): rises then collapses, like a PV curve.
  auto p = [](double v) { return v * (1.0 - std::exp((v - 5.0) / 0.3)); };
  const double x = golden_section_maximize(p, 0.0, 5.0);
  EXPECT_GT(p(x), p(x + 0.01));
  EXPECT_GT(p(x), p(x - 0.01));
}

TEST(LinearInterpolator, InterpolatesAndClamps) {
  LinearInterpolator interp({0.0, 1.0, 3.0}, {0.0, 10.0, 30.0});
  EXPECT_DOUBLE_EQ(interp(0.5), 5.0);
  EXPECT_DOUBLE_EQ(interp(2.0), 20.0);
  EXPECT_DOUBLE_EQ(interp(-1.0), 0.0);   // clamped low
  EXPECT_DOUBLE_EQ(interp(10.0), 30.0);  // clamped high
  EXPECT_DOUBLE_EQ(interp.min_x(), 0.0);
  EXPECT_DOUBLE_EQ(interp.max_x(), 3.0);
}

TEST(LinearInterpolator, RejectsUnsortedOrMismatched) {
  EXPECT_THROW(LinearInterpolator({1.0, 0.0}, {0.0, 1.0}), PreconditionError);
  EXPECT_THROW(LinearInterpolator({0.0, 0.0}, {0.0, 1.0}), PreconditionError);
  EXPECT_THROW(LinearInterpolator({0.0}, {0.0, 1.0}), PreconditionError);
  EXPECT_THROW(LinearInterpolator({}, {}), PreconditionError);
}

TEST(TrapezoidIntegral, IntegratesLinearExactly) {
  const std::vector<double> t = {0.0, 1.0, 2.0, 4.0};
  const std::vector<double> v = {0.0, 2.0, 4.0, 8.0};  // v = 2t
  EXPECT_DOUBLE_EQ(trapezoid_integral(t, v), 16.0);    // integral of 2t over [0,4]
}

TEST(TrapezoidIntegral, EmptyAndSingleSampleAreZero) {
  EXPECT_DOUBLE_EQ(trapezoid_integral({}, {}), 0.0);
  EXPECT_DOUBLE_EQ(trapezoid_integral({1.0}, {5.0}), 0.0);
}

TEST(ClampSorted, WorksWithEitherOrder) {
  EXPECT_DOUBLE_EQ(clamp_sorted(5.0, 0.0, 3.0), 3.0);
  EXPECT_DOUBLE_EQ(clamp_sorted(5.0, 3.0, 0.0), 3.0);
  EXPECT_DOUBLE_EQ(clamp_sorted(1.5, 0.0, 3.0), 1.5);
}

}  // namespace
}  // namespace focv
