#include "common/units.hpp"

#include <gtest/gtest.h>

#include "common/constants.hpp"

namespace focv {
namespace {

TEST(Units, TimeLiterals) {
  EXPECT_DOUBLE_EQ(39.0_ms, 0.039);
  EXPECT_DOUBLE_EQ(69_s, 69.0);
  EXPECT_DOUBLE_EQ(1_min, 60.0);
  EXPECT_DOUBLE_EQ(24_hours, 86400.0);
  EXPECT_DOUBLE_EQ(500_us, 5e-4);
  EXPECT_DOUBLE_EQ(10_ns, 1e-8);
}

TEST(Units, ElectricalLiterals) {
  EXPECT_DOUBLE_EQ(3.3_V, 3.3);
  EXPECT_DOUBLE_EQ(12.7_mV, 0.0127);
  EXPECT_DOUBLE_EQ(8_uA, 8e-6);
  EXPECT_DOUBLE_EQ(42_uA, 4.2e-5);
  EXPECT_DOUBLE_EQ(10_kOhm, 1e4);
  EXPECT_DOUBLE_EQ(99.55_MOhm, 9.955e7);
  EXPECT_DOUBLE_EQ(100_nF, 1e-7);
  EXPECT_DOUBLE_EQ(1_uF, 1e-6);
  EXPECT_DOUBLE_EQ(2_mW, 2e-3);
  EXPECT_DOUBLE_EQ(300_uW, 3e-4);
}

TEST(Units, TemperatureAndIlluminance) {
  EXPECT_DOUBLE_EQ(27_degC, 300.15);
  EXPECT_DOUBLE_EQ(0_degC, 273.15);
  EXPECT_DOUBLE_EQ(1000_lux, 1000.0);
  EXPECT_DOUBLE_EQ(50_pct, 0.5);
}

TEST(Units, IVPointPower) {
  constexpr IVPoint p{3.0, 42e-6};
  EXPECT_DOUBLE_EQ(p.power(), 126e-6);
}

TEST(Constants, ThermalVoltage) {
  EXPECT_NEAR(constants::thermal_voltage(), 0.02585, 1e-4);
  EXPECT_NEAR(constants::thermal_voltage(350.0), 0.03016, 1e-4);
}

}  // namespace
}  // namespace focv
