#include <sstream>

#include <gtest/gtest.h>

#include "common/ascii_plot.hpp"
#include "common/require.hpp"
#include "common/table.hpp"

namespace focv {
namespace {

TEST(ConsoleTable, RendersAlignedBox) {
  ConsoleTable table({"Name", "Value"});
  table.add_row({"alpha", "1.5"});
  table.add_row({"beta-long-name", "2"});
  std::ostringstream os;
  table.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("Name"), std::string::npos);
  EXPECT_NE(out.find("beta-long-name"), std::string::npos);
  // Box rules top, header separator, bottom.
  int rules = 0;
  for (std::size_t pos = out.find("+--"); pos != std::string::npos;
       pos = out.find("+--", pos + 1)) {
    ++rules;
  }
  EXPECT_GE(rules, 3);
}

TEST(ConsoleTable, RejectsWrongWidthRow) {
  ConsoleTable table({"a", "b"});
  EXPECT_THROW(table.add_row({"only-one"}), PreconditionError);
}

TEST(ConsoleTable, NumFormatsPrecision) {
  EXPECT_EQ(ConsoleTable::num(3.14159, 2), "3.14");
  EXPECT_EQ(ConsoleTable::num(5.0, 0), "5");
}

TEST(AsciiPlot, RendersSeriesWithinFrame) {
  std::vector<double> x, y;
  for (int i = 0; i <= 50; ++i) {
    x.push_back(i * 0.1);
    y.push_back(i * 0.2);
  }
  std::ostringstream os;
  ascii_plot(os, {{x, y, '*', "ramp"}}, {.width = 40, .height = 10, .title = "T"});
  const std::string out = os.str();
  EXPECT_NE(out.find('T'), std::string::npos);
  EXPECT_NE(out.find('*'), std::string::npos);
  EXPECT_NE(out.find("ramp"), std::string::npos);
}

TEST(AsciiPlot, EmptySeriesSafe) {
  std::ostringstream os;
  ascii_plot(os, {});
  EXPECT_NE(os.str().find("empty"), std::string::npos);
}

TEST(AsciiPlot, ConstantSeriesSafe) {
  std::ostringstream os;
  ascii_plot(os, {{{0.0, 1.0}, {2.0, 2.0}, '#', ""}});
  EXPECT_NE(os.str().find('#'), std::string::npos);
}

TEST(AsciiPlot, RejectsMismatchedSeries) {
  std::ostringstream os;
  EXPECT_THROW(ascii_plot(os, {{{0.0, 1.0}, {2.0}, '*', ""}}), PreconditionError);
}

TEST(AsciiPlot, RejectsTinyPlotArea) {
  std::ostringstream os;
  EXPECT_THROW(ascii_plot(os, {{{0.0}, {1.0}, '*', ""}}, {.width = 2, .height = 2}),
               PreconditionError);
}

}  // namespace
}  // namespace focv
