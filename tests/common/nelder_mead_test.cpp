#include "common/nelder_mead.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "common/require.hpp"

namespace focv {
namespace {

TEST(NelderMead, MinimisesQuadraticBowl) {
  const auto result = nelder_mead_minimize(
      [](const std::vector<double>& x) {
        return (x[0] - 3.0) * (x[0] - 3.0) + 2.0 * (x[1] + 1.0) * (x[1] + 1.0);
      },
      {0.0, 0.0});
  EXPECT_NEAR(result.x[0], 3.0, 1e-4);
  EXPECT_NEAR(result.x[1], -1.0, 1e-4);
  EXPECT_LT(result.value, 1e-7);
}

TEST(NelderMead, MinimisesRosenbrock) {
  const auto result = nelder_mead_minimize(
      [](const std::vector<double>& x) {
        const double a = 1.0 - x[0];
        const double b = x[1] - x[0] * x[0];
        return a * a + 100.0 * b * b;
      },
      {-1.2, 1.0}, NelderMeadOptions{.max_iterations = 5000, .restarts = 4});
  EXPECT_NEAR(result.x[0], 1.0, 1e-3);
  EXPECT_NEAR(result.x[1], 1.0, 2e-3);
}

TEST(NelderMead, HandlesPoorlyScaledParameters) {
  // One parameter in the 1e-12 range, one in the 1e6 range (PV fit shape).
  const auto result = nelder_mead_minimize(
      [](const std::vector<double>& x) {
        const double a = (x[0] - 2e-12) / 1e-12;
        const double b = (x[1] - 5e6) / 1e6;
        return a * a + b * b;
      },
      {1e-12, 1e6}, NelderMeadOptions{.max_iterations = 5000, .restarts = 4});
  EXPECT_NEAR(result.x[0], 2e-12, 1e-13);
  EXPECT_NEAR(result.x[1], 5e6, 1e4);
}

TEST(NelderMead, OneDimensional) {
  const auto result = nelder_mead_minimize(
      [](const std::vector<double>& x) { return std::cosh(x[0] - 0.5); }, {5.0});
  EXPECT_NEAR(result.x[0], 0.5, 1e-4);
}

TEST(NelderMead, SurvivesPenaltyPlateaus) {
  // Objective returns a large penalty outside a feasible box.
  const auto result = nelder_mead_minimize(
      [](const std::vector<double>& x) {
        if (std::abs(x[0]) > 2.0) return 1e12;
        return (x[0] - 1.0) * (x[0] - 1.0);
      },
      {0.0});
  EXPECT_NEAR(result.x[0], 1.0, 1e-4);
}

TEST(NelderMead, RejectsEmptyStart) {
  EXPECT_THROW(nelder_mead_minimize([](const std::vector<double>&) { return 0.0; }, {}),
               PreconditionError);
}

TEST(NelderMead, ReportsConvergence) {
  const auto result = nelder_mead_minimize(
      [](const std::vector<double>& x) { return x[0] * x[0]; }, {1.0});
  EXPECT_TRUE(result.converged);
  EXPECT_GT(result.iterations, 0);
}

}  // namespace
}  // namespace focv
