#include "common/csv.hpp"

#include <cstdio>
#include <filesystem>
#include <string>

#include <gtest/gtest.h>

#include "common/require.hpp"

namespace focv {
namespace {

std::string temp_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

TEST(Csv, RoundTrip) {
  CsvTable table;
  table.columns = {"t", "v", "i"};
  table.rows = {{0.0, 1.5, -2e-6}, {1.0, 2.5, 3e-6}, {2.0, 3.75, 0.0}};
  const std::string path = temp_path("focv_csv_roundtrip.csv");
  write_csv(path, table);
  const CsvTable back = read_csv(path);
  ASSERT_EQ(back.columns, table.columns);
  ASSERT_EQ(back.rows.size(), table.rows.size());
  for (std::size_t r = 0; r < table.rows.size(); ++r) {
    for (std::size_t c = 0; c < table.columns.size(); ++c) {
      EXPECT_DOUBLE_EQ(back.rows[r][c], table.rows[r][c]);
    }
  }
  std::remove(path.c_str());
}

TEST(Csv, ColumnExtraction) {
  CsvTable table;
  table.columns = {"a", "b"};
  table.rows = {{1.0, 10.0}, {2.0, 20.0}};
  EXPECT_EQ(table.column_index("b"), 1u);
  const std::vector<double> b = table.column("b");
  ASSERT_EQ(b.size(), 2u);
  EXPECT_DOUBLE_EQ(b[0], 10.0);
  EXPECT_DOUBLE_EQ(b[1], 20.0);
}

TEST(Csv, MissingColumnThrows) {
  CsvTable table;
  table.columns = {"a"};
  EXPECT_THROW(table.column("nope"), PreconditionError);
}

TEST(Csv, ReadMissingFileThrows) {
  EXPECT_THROW(read_csv("/nonexistent/path/file.csv"), PreconditionError);
}

TEST(Csv, RaggedRowThrowsOnWrite) {
  CsvTable table;
  table.columns = {"a", "b"};
  table.rows = {{1.0}};
  EXPECT_THROW(write_csv(temp_path("focv_ragged.csv"), table), PreconditionError);
}

TEST(Csv, NonNumericCellThrowsOnRead) {
  const std::string path = temp_path("focv_bad.csv");
  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    std::fputs("a,b\n1.0,hello\n", f);
    std::fclose(f);
  }
  EXPECT_THROW(read_csv(path), PreconditionError);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace focv
