#include "common/rng.hpp"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

namespace focv {
namespace {

TEST(Rng, DeterministicForEqualSeeds) {
  Rng a(1234), b(1234);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, ReseedRestartsStream) {
  Rng a(77);
  std::vector<std::uint64_t> first;
  for (int i = 0; i < 10; ++i) first.push_back(a.next_u64());
  a.reseed(77);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(a.next_u64(), first[static_cast<std::size_t>(i)]);
}

TEST(Rng, UniformInRange) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    const double v = rng.uniform(-3.0, 5.0);
    EXPECT_GE(v, -3.0);
    EXPECT_LT(v, 5.0);
  }
}

TEST(Rng, UniformMeanAndVariance) {
  Rng rng(10);
  double sum = 0.0, sum_sq = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double u = rng.uniform();
    sum += u;
    sum_sq += u * u;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.5, 0.01);
  EXPECT_NEAR(var, 1.0 / 12.0, 0.01);
}

TEST(Rng, GaussianMoments) {
  Rng rng(11);
  double sum = 0.0, sum_sq = 0.0, sum_cu = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.gaussian();
    sum += g;
    sum_sq += g * g;
    sum_cu += g * g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.03);
  EXPECT_NEAR(sum_cu / n, 0.0, 0.08);  // symmetry
}

TEST(Rng, GaussianScaled) {
  Rng rng(12);
  double sum = 0.0, sum_sq = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.gaussian(5.0, 2.0);
    sum += g;
    sum_sq += (g - 5.0) * (g - 5.0);
  }
  EXPECT_NEAR(sum / n, 5.0, 0.05);
  EXPECT_NEAR(std::sqrt(sum_sq / n), 2.0, 0.05);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(13);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, BernoulliRejectsBadProbability) {
  Rng rng(14);
  EXPECT_THROW(rng.bernoulli(-0.1), PreconditionError);
  EXPECT_THROW(rng.bernoulli(1.1), PreconditionError);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(15);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.below(7), 7u);
  EXPECT_THROW(rng.below(0), PreconditionError);
}

TEST(Rng, GaussianRejectsNegativeStddev) {
  Rng rng(16);
  EXPECT_THROW(rng.gaussian(0.0, -1.0), PreconditionError);
}

TEST(Rng, MakeStreamRngMatchesDerivedSeed) {
  // make_stream_rng is sugar for Rng(derive_stream_seed(...)): the one
  // blessed per-work-item seeding used by every parallel engine.
  Rng direct(derive_stream_seed(2024, 17));
  Rng stream = make_stream_rng(2024, 17);
  for (int i = 0; i < 64; ++i) EXPECT_EQ(stream.next_u64(), direct.next_u64());
}

TEST(Rng, MakeStreamRngStreamsAreDistinct) {
  Rng a = make_stream_rng(2024, 0);
  Rng b = make_stream_rng(2024, 1);
  Rng c = make_stream_rng(2025, 0);
  int same_ab = 0;
  int same_ac = 0;
  for (int i = 0; i < 64; ++i) {
    const std::uint64_t va = a.next_u64();
    same_ab += va == b.next_u64() ? 1 : 0;
    same_ac += va == c.next_u64() ? 1 : 0;
  }
  EXPECT_EQ(same_ab, 0);
  EXPECT_EQ(same_ac, 0);
}

}  // namespace
}  // namespace focv
