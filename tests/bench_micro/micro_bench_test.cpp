// The microbenchmark harness is release tooling: CI gates on its smoke
// mode, and the committed BENCH_micro.json is parsed by people and
// scripts. These tests drive the full CLI in-process.
#include "harness.hpp"

#include <gtest/gtest.h>

#include <cctype>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

namespace focv::microbench {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  std::ostringstream out;
  out << f.rdbuf();
  return out.str();
}

/// Minimal structural JSON validation: balanced containers outside
/// strings, no trailing garbage. Catches every way the hand-rolled
/// emitter could break without needing a JSON library in the image.
bool json_is_balanced(const std::string& s) {
  int depth = 0;
  bool in_string = false, escaped = false, seen_any = false;
  for (const char c : s) {
    if (in_string) {
      if (escaped) {
        escaped = false;
      } else if (c == '\\') {
        escaped = true;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    if (c == '"') {
      in_string = true;
    } else if (c == '{' || c == '[') {
      ++depth;
      seen_any = true;
    } else if (c == '}' || c == ']') {
      if (--depth < 0) return false;
    } else if (depth == 0 && !std::isspace(static_cast<unsigned char>(c)) && seen_any) {
      return false;  // trailing garbage after the root object
    }
  }
  return seen_any && depth == 0 && !in_string;
}

TEST(MicroBenchStats, MedianAndMad) {
  EXPECT_DOUBLE_EQ(median({3.0, 1.0, 2.0}), 2.0);
  EXPECT_DOUBLE_EQ(median({4.0, 1.0, 3.0, 2.0}), 2.5);
  EXPECT_DOUBLE_EQ(median({}), 0.0);
  // MAD ignores a single outlier entirely.
  EXPECT_DOUBLE_EQ(median_abs_deviation({1.0, 1.0, 1.0, 100.0}, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(median_abs_deviation({1.0, 2.0, 3.0}, 2.0), 1.0);
}

TEST(MicroBenchHarness, SmokeRunCompletesAndWritesSchemaValidJson) {
  const std::string path = ::testing::TempDir() + "/bench_micro_smoke.json";
  ASSERT_EQ(main_with_args({"--smoke", "--output=" + path}), 0);
  const std::string json = slurp(path);
  ASSERT_FALSE(json.empty());
  EXPECT_TRUE(json_is_balanced(json)) << json;
  EXPECT_NE(json.find("\"schema\": \"focv-bench-micro/v2\""), std::string::npos);
  EXPECT_NE(json.find("\"smoke\": true"), std::string::npos);
  // The standard suite and its derived ratios are all present.
  for (const char* name :
       {"simulate_node_24h_indoor_surrogate", "simulate_node_24h_indoor_exact",
        "simulate_node_24h_outdoor_surrogate", "simulate_node_24h_outdoor_exact",
        "simulate_node_24h_indoor_event", "simulate_node_24h_outdoor_event",
        "sweep_jobs1", "sweep_jobsN", "circuit_transient_window",
        "cell_model_solves", "fleet_step", "fleet_step_event",
        "fleet_soa_ref_event", "fleet_soa_float", "fleet_soa_quantized",
        "obs_overhead_disabled", "obs_overhead_enabled",
        "speedup_simulate_node_24h_indoor",
        "speedup_simulate_node_24h_outdoor", "overhead_obs_overhead",
        "speedup_fleet_soa",
        "speedup_event_stepper_simulate_node_24h_indoor",
        "speedup_event_stepper_simulate_node_24h_outdoor",
        "speedup_event_stepper_fleet_step"}) {
    EXPECT_NE(json.find(name), std::string::npos) << name;
  }
  std::remove(path.c_str());
}

TEST(MicroBenchHarness, FilterSelectsASubset) {
  if (registry().empty()) register_default_cases();
  RunOptions opt;
  opt.smoke = true;
  opt.repetitions = 1;
  opt.warmup = 0;
  opt.filter = "cell_model";
  const std::vector<CaseResult> results = run_cases(opt);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].name, "cell_model_solves");
  EXPECT_EQ(results[0].seconds.size(), 1u);
  EXPECT_GT(results[0].median_s, 0.0);
  // Counters made it through (3 solves per ladder level).
  bool found = false;
  for (const auto& [key, value] : results[0].counters) {
    if (key == "solves") {
      found = true;
      EXPECT_GT(value, 0.0);
    }
  }
  EXPECT_TRUE(found);
}

TEST(MicroBenchHarness, SmokeDefaultsTrimRepetitions) {
  RunOptions smoke;
  smoke.smoke = true;
  EXPECT_EQ(smoke.effective_repetitions(), 2);
  EXPECT_EQ(smoke.effective_warmup(), 0);
  RunOptions full;
  EXPECT_EQ(full.effective_repetitions(), 7);
  EXPECT_EQ(full.effective_warmup(), 1);
  smoke.repetitions = 5;
  EXPECT_EQ(smoke.effective_repetitions(), 5);
}

TEST(MicroBenchHarness, UnknownFlagIsAnError) {
  EXPECT_EQ(main_with_args({"--no-such-flag"}), 2);
}

}  // namespace
}  // namespace focv::microbench
