// Switch-level converter netlist: input regulation and energy flow.
#include <gtest/gtest.h>

#include "circuit/transient.hpp"
#include "core/netlists.hpp"
#include "pv/cell_library.hpp"

namespace focv::core {
namespace {

using namespace focv::circuit;

Trace run(double lux, double held, double t_stop = 20e-3) {
  Circuit ckt;
  pv::Conditions c;
  c.illuminance_lux = lux;
  build_switching_converter(ckt, pv::sanyo_am1815(), c, held, 2.5);
  TransientOptions opt;
  opt.t_stop = t_stop;
  opt.start_from_dc = false;
  opt.dt_initial = 1e-7;
  opt.dt_max = 20e-6;
  opt.dv_step_max = 0.3;
  return transient_analyze(ckt, opt);
}

TEST(SwitchingConverter, RegulatesInputNearSetpoint) {
  pv::Conditions c;
  c.illuminance_lux = 1000.0;
  const double held = 0.298 * pv::sanyo_am1815().open_circuit_voltage(c);
  const Trace tr = run(1000.0, held);
  const double pv_avg = tr.time_average("conv_pv", 10e-3, 20e-3);
  EXPECT_NEAR(pv_avg, 2.0 * held, 0.08);
}

TEST(SwitchingConverter, SelfOscillates) {
  pv::Conditions c;
  c.illuminance_lux = 1000.0;
  const double held = 0.298 * pv::sanyo_am1815().open_circuit_voltage(c);
  const Trace tr = run(1000.0, held);
  int edges = 0;
  for (const double e : tr.crossing_times("conv_gate", 1.65, true)) {
    if (e > 10e-3) ++edges;
  }
  EXPECT_GE(edges, 2);  // sustained switching, not a latch-up
}

TEST(SwitchingConverter, DeliversEnergyToOutput) {
  pv::Conditions c;
  c.illuminance_lux = 1000.0;
  const double held = 0.298 * pv::sanyo_am1815().open_circuit_voltage(c);
  const Trace tr = run(1000.0, held);
  const double i_l = tr.time_average("I(conv_L)", 10e-3, 20e-3);
  EXPECT_GT(i_l, 50e-6);  // average inductor current flows towards the store
  // Output held up against its bleed load.
  EXPECT_GT(tr.time_average("conv_out", 10e-3, 20e-3), 2.4);
}

TEST(SwitchingConverter, EfficiencyInPlausibleRange) {
  pv::Conditions c;
  c.illuminance_lux = 1000.0;
  const double held = 0.298 * pv::sanyo_am1815().open_circuit_voltage(c);
  const Trace tr = run(1000.0, held);
  const double pv_avg = tr.time_average("conv_pv", 10e-3, 20e-3);
  const double p_in = pv_avg * pv::sanyo_am1815().current(pv_avg, c);
  const double p_out = tr.time_average("I(conv_L)", 10e-3, 20e-3) *
                       tr.time_average("conv_out", 10e-3, 20e-3);
  const double eff = p_out / p_in;
  EXPECT_GT(eff, 0.6);
  EXPECT_LT(eff, 1.0);
}

TEST(SwitchingConverter, SetpointChangesOperatingPoint) {
  pv::Conditions c;
  c.illuminance_lux = 1000.0;
  const double voc = pv::sanyo_am1815().open_circuit_voltage(c);
  const Trace lo = run(1000.0, 0.25 * voc);
  const Trace hi = run(1000.0, 0.32 * voc);
  EXPECT_LT(lo.time_average("conv_pv", 10e-3, 20e-3),
            hi.time_average("conv_pv", 10e-3, 20e-3) - 0.2);
}

}  // namespace
}  // namespace focv::core
