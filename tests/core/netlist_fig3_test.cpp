// The complete Fig. 3 system at circuit level.
#include <gtest/gtest.h>

#include "circuit/transient.hpp"
#include "core/netlists.hpp"
#include "pv/cell_library.hpp"

namespace focv::core {
namespace {

using namespace focv::circuit;

Trace run_fig3(double lux, double t_stop = 80.0) {
  Circuit ckt;
  pv::Conditions c;
  c.illuminance_lux = lux;
  build_fig3_system(ckt, pv::sanyo_am1815(), c, SystemSpec{});
  TransientOptions opt;
  opt.t_stop = t_stop;
  opt.start_from_dc = false;
  opt.dt_initial = 1e-6;
  opt.dt_max = 0.25;
  opt.dv_step_max = 0.4;
  return transient_analyze(ckt, opt);
}

TEST(NetlistFig3, HeldSampleNearDividedVoc) {
  const Trace tr = run_fig3(1000.0);
  pv::Conditions c;
  c.illuminance_lux = 1000.0;
  const double voc = pv::sanyo_am1815().open_circuit_voltage(c);
  // HELD = Voc * k * alpha (Eq. 3) with small circuit non-idealities.
  EXPECT_NEAR(tr.at("sys_sh_held", 40.0), voc * 0.298, 0.03);
}

TEST(NetlistFig3, ConverterRegulatesPvAtTwiceHeld) {
  const Trace tr = run_fig3(1000.0);
  const double held = tr.at("sys_sh_held", 40.0);
  EXPECT_NEAR(tr.at("sys_pv", 40.0), 2.0 * held, 0.05);
}

TEST(NetlistFig3, PvFloatsToVocDuringSampling) {
  const Trace tr = run_fig3(1000.0);
  pv::Conditions c;
  c.illuminance_lux = 1000.0;
  const double voc = pv::sanyo_am1815().open_circuit_voltage(c);
  // First PULSE window is right at the start.
  EXPECT_NEAR(tr.maximum("sys_pv", 0.002, 0.035), voc, 0.02);
}

TEST(NetlistFig3, ActiveAssertsAfterFirstSample) {
  const Trace tr = run_fig3(1000.0, 10.0);
  EXPECT_LT(tr.at("sys_sh_active", 0.0), 0.5);   // power-on: no valid sample
  EXPECT_GT(tr.at("sys_sh_active", 5.0), 3.0);   // asserted after sampling
}

TEST(NetlistFig3, WorksAcrossIlluminanceRange) {
  for (const double lux : {200.0, 1000.0, 5000.0}) {
    const Trace tr = run_fig3(lux, 45.0);
    pv::Conditions c;
    c.illuminance_lux = lux;
    const double voc = pv::sanyo_am1815().open_circuit_voltage(c);
    const double held = tr.at("sys_sh_held", 40.0);
    const double ratio = 2.0 * held / voc;
    // Table I: effective k between 59.2% and 60.1% (modelled circuit
    // non-idealities widen this slightly).
    EXPECT_GT(ratio, 0.57) << "lux=" << lux;
    EXPECT_LT(ratio, 0.61) << "lux=" << lux;
  }
}

TEST(NetlistFig3, M1DisconnectsLoadDuringPulse) {
  const Trace tr = run_fig3(1000.0, 10.0);
  // While PULSE is high the converter side (sw_in) is cut from the PV:
  // the sense divider discharges it towards ground.
  const double sw_during = tr.at("sys_swin", 0.020);
  const double sw_after = tr.at("sys_swin", 5.0);
  EXPECT_LT(sw_during, sw_after);
}

}  // namespace
}  // namespace focv::core
