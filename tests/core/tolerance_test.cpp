// Monte-Carlo component-tolerance analysis.
#include <gtest/gtest.h>

#include "common/require.hpp"
#include "core/tolerance.hpp"

namespace focv::core {
namespace {

TEST(ToleranceMc, DeterministicForSeed) {
  const auto a = run_tolerance_monte_carlo(SystemSpec{}, ToleranceSpec{}, 50, 7);
  const auto b = run_tolerance_monte_carlo(SystemSpec{}, ToleranceSpec{}, 50, 7);
  ASSERT_EQ(a.samples().size(), b.samples().size());
  for (std::size_t i = 0; i < a.samples().size(); i += 13) {
    EXPECT_DOUBLE_EQ(a.samples()[i].effective_k, b.samples()[i].effective_k);
  }
}

TEST(ToleranceMc, MeanNearNominal) {
  const auto report = run_tolerance_monte_carlo(SystemSpec{}, ToleranceSpec{}, 400);
  EXPECT_NEAR(report.k_stats().mean, 0.596, 0.01);
  EXPECT_NEAR(report.on_period_stats().mean, 39e-3, 3e-3);
  EXPECT_NEAR(report.off_period_stats().mean, 69.0, 4.0);
  EXPECT_NEAR(report.current_stats().mean, 7.6e-6, 0.8e-6);
}

TEST(ToleranceMc, TrimRemovesDividerSpread) {
  ToleranceSpec untrimmed;
  ToleranceSpec trimmed = untrimmed;
  trimmed.trimmed = true;
  const auto a = run_tolerance_monte_carlo(SystemSpec{}, untrimmed, 400);
  const auto b = run_tolerance_monte_carlo(SystemSpec{}, trimmed, 400);
  EXPECT_LT(b.k_stats().stddev, 0.5 * a.k_stats().stddev);
  // Trimmed yield in a tight k window is near-total.
  EXPECT_GT(b.k_yield(0.59, 0.602), 0.95);
}

TEST(ToleranceMc, YieldMonotoneInWindow) {
  const auto report = run_tolerance_monte_carlo(SystemSpec{}, ToleranceSpec{}, 300);
  const double narrow = report.k_yield(0.594, 0.598);
  const double wide = report.k_yield(0.57, 0.62);
  EXPECT_LE(narrow, wide);
  EXPECT_GT(wide, 0.9);
}

TEST(ToleranceMc, CapacitorToleranceDrivesTimingSpread) {
  ToleranceSpec tight;
  tight.capacitor_tolerance = 0.001;
  ToleranceSpec loose;
  loose.capacitor_tolerance = 0.10;
  const auto a = run_tolerance_monte_carlo(SystemSpec{}, tight, 300);
  const auto b = run_tolerance_monte_carlo(SystemSpec{}, loose, 300);
  EXPECT_LT(a.off_period_stats().stddev, b.off_period_stats().stddev);
}

TEST(ToleranceMc, RejectsBadInputs) {
  EXPECT_THROW(run_tolerance_monte_carlo(SystemSpec{}, ToleranceSpec{}, 0), focv::PreconditionError);
  const auto report = run_tolerance_monte_carlo(SystemSpec{}, ToleranceSpec{}, 10);
  EXPECT_THROW(report.k_yield(0.7, 0.6), focv::PreconditionError);
}

}  // namespace
}  // namespace focv::core
