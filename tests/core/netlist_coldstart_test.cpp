// Circuit-level cold start (Fig. 3 C1/D1 path).
#include <gtest/gtest.h>

#include "circuit/transient.hpp"
#include "core/netlists.hpp"
#include "pv/cell_library.hpp"

namespace focv::core {
namespace {

using namespace focv::circuit;

Trace run_coldstart(double lux, double t_stop) {
  Circuit ckt;
  pv::Conditions c;
  c.illuminance_lux = lux;
  build_coldstart(ckt, pv::sanyo_am1815(), c, SystemSpec{});
  TransientOptions opt;
  opt.t_stop = t_stop;
  opt.start_from_dc = false;  // everything starts discharged
  opt.dt_initial = 1e-5;
  opt.dt_max = 0.1;
  opt.dv_step_max = 0.4;
  return transient_analyze(ckt, opt);
}

TEST(NetlistColdStart, StartsAt200Lux) {
  const Trace tr = run_coldstart(200.0, 20.0);
  // C1 charges past the threshold and the switched rail comes up.
  EXPECT_GT(tr.at("cs_c1", 19.0), 2.0);
  EXPECT_GT(tr.at("cs_vdd", 19.0), 1.8);
  // The astable then fires its first PULSE.
  const auto rises = tr.crossing_times("cs_ast_pulse", 1.0, true);
  EXPECT_FALSE(rises.empty());
}

TEST(NetlistColdStart, ChargeTimeScalesWithLux) {
  const Trace dim = run_coldstart(200.0, 20.0);
  const Trace bright = run_coldstart(1000.0, 20.0);
  const auto t_dim = dim.crossing_times("cs_c1", 2.0, true);
  const auto t_bright = bright.crossing_times("cs_c1", 2.0, true);
  ASSERT_FALSE(t_dim.empty());
  ASSERT_FALSE(t_bright.empty());
  EXPECT_GT(t_dim[0], 2.0 * t_bright[0]);
}

TEST(NetlistColdStart, StaysDownInDarkness) {
  const Trace tr = run_coldstart(5.0, 20.0);
  EXPECT_LT(tr.maximum("cs_vdd", 0.0, 20.0), 0.5);
}

}  // namespace
}  // namespace focv::core
