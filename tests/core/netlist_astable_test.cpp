// Circuit-level astable vs the paper's measured timing.
#include <gtest/gtest.h>

#include "circuit/devices_sources.hpp"
#include "circuit/transient.hpp"
#include "core/netlists.hpp"

namespace focv::core {
namespace {

using namespace focv::circuit;

struct AstableRun {
  Trace trace;
  std::vector<double> rises, falls;
};

AstableRun run_astable(double t_stop = 230.0) {
  Circuit ckt;
  const NodeId vdd = ckt.node("vdd");
  ckt.add<VoltageSource>("Vdd", vdd, kGround, Waveform::dc(3.3));
  build_astable(ckt, vdd, SystemSpec{});
  TransientOptions opt;
  opt.t_stop = t_stop;
  opt.start_from_dc = false;
  opt.dt_initial = 1e-5;
  opt.dt_max = 0.5;
  opt.dv_step_max = 0.4;
  AstableRun run{transient_analyze(ckt, opt), {}, {}};
  run.rises = run.trace.crossing_times("ast_pulse", 1.65, true);
  run.falls = run.trace.crossing_times("ast_pulse", 1.65, false);
  return run;
}

TEST(NetlistAstable, OscillatesAtPaperTiming) {
  const AstableRun run = run_astable();
  ASSERT_GE(run.rises.size(), 3u);
  // Steady-state on-period (skip the longer start-up pulse).
  double t_on = -1.0;
  for (const double f : run.falls) {
    if (f > run.rises[1]) {
      t_on = f - run.rises[1];
      break;
    }
  }
  const double period = run.rises[2] - run.rises[1];
  EXPECT_NEAR(t_on, 39e-3, 39e-3 * 0.05);       // 39 ms +- 5%
  EXPECT_NEAR(period, 69.039, 69.039 * 0.05);   // 69 s +- 5%
}

TEST(NetlistAstable, SupplyCurrentBelowOneMicroamp) {
  const AstableRun run = run_astable();
  const double i_avg = -run.trace.time_average("I(Vdd)", 5.0, 225.0);
  // Comparator 0.7 uA + feedback/timing network ~0.24 uA.
  EXPECT_NEAR(i_avg, 0.94e-6, 0.12e-6);
}

TEST(NetlistAstable, OutputSwingsRailToRail) {
  const AstableRun run = run_astable(100.0);
  EXPECT_GT(run.trace.maximum("ast_pulse", 0.0, 100.0), 3.0);
  EXPECT_LT(run.trace.minimum("ast_pulse", 1.0, 100.0), 0.3);
}

TEST(NetlistAstable, CapacitorRidesBetweenThresholds) {
  const AstableRun run = run_astable(150.0);
  // Vcc/3 and 2*Vcc/3 thresholds (1.1 / 2.2), small dynamic overshoot.
  EXPECT_GT(run.trace.minimum("ast_cap", 5.0, 145.0), 0.9);
  EXPECT_LT(run.trace.maximum("ast_cap", 5.0, 145.0), 2.4);
}

TEST(NetlistAstable, FirstPulseArrivesImmediately) {
  // Cold start behaviour: the first PULSE must come right away (the
  // timing cap starts empty, below the low threshold).
  const AstableRun run = run_astable(5.0);
  ASSERT_FALSE(run.rises.empty());
  EXPECT_LT(run.rises[0], 0.1);
}

}  // namespace
}  // namespace focv::core
