#include "core/focv_system.hpp"

#include <gtest/gtest.h>

namespace focv::core {
namespace {

TEST(SystemSpec, PaperBudgetTotalsSevenPointSixMicroamps) {
  const analog::PowerBudget budget = paper_power_budget();
  EXPECT_NEAR(budget.total_current(), 7.6e-6, 0.1e-6);
  // Worst-case figure quoted in the evaluation: 8 uA.
  EXPECT_LT(budget.total_current(), 8e-6);
  EXPECT_GE(budget.items().size(), 6u);
}

TEST(SystemSpec, BudgetDominatedByBuffersNotSampling) {
  // The design insight: the duty-cycled divider is negligible; the
  // static op-amp/comparator quiescents dominate.
  const analog::PowerBudget budget = paper_power_budget();
  double divider = 0.0, buffers = 0.0;
  for (const auto& item : budget.items()) {
    if (item.component.find("divider") != std::string::npos) divider += item.current;
    if (item.component.find("buffer") != std::string::npos) buffers += item.current;
  }
  EXPECT_LT(divider, 0.01 * buffers);
}

TEST(SystemSpec, AstableParamsMatchMeasuredTiming) {
  const auto params = astable_params_from_spec(SystemSpec{});
  EXPECT_DOUBLE_EQ(params.on_period, 39e-3);
  EXPECT_DOUBLE_EQ(params.off_period, 69.0);
}

TEST(SystemSpec, ControllerReflectsSpecChanges) {
  SystemSpec spec;
  spec.divider_ratio = 0.35;
  spec.astable_off_period = 120.0;
  const auto ctl = make_paper_controller(spec);
  EXPECT_DOUBLE_EQ(ctl.sample_hold().params().divider_ratio, 0.35);
  EXPECT_DOUBLE_EQ(ctl.astable().params().off_period, 120.0);
}

TEST(SystemSpec, AcquisitionFitsInsidePulse) {
  const auto ctl = make_paper_controller();
  EXPECT_LT(ctl.sample_hold().params().acquisition_time, ctl.astable().params().on_period);
}

}  // namespace
}  // namespace focv::core
