// The behavioural tier and the circuit netlists must agree (DESIGN.md §5.1).
#include <gtest/gtest.h>

#include "circuit/transient.hpp"
#include "core/focv_system.hpp"
#include "core/netlists.hpp"
#include "mppt/focv_sample_hold.hpp"
#include "pv/cell_library.hpp"

namespace focv::core {
namespace {

using namespace focv::circuit;

TEST(CrossFidelity, HeldSampleAgreesWithinTolerance) {
  const SystemSpec spec;
  for (const double lux : {200.0, 1000.0, 5000.0}) {
    // Netlist tier.
    Circuit ckt;
    pv::Conditions c;
    c.illuminance_lux = lux;
    build_fig3_system(ckt, pv::sanyo_am1815(), c, spec);
    TransientOptions opt;
    opt.t_stop = 45.0;
    opt.start_from_dc = false;
    opt.dt_initial = 1e-6;
    opt.dt_max = 0.25;
    opt.dv_step_max = 0.4;
    const Trace tr = transient_analyze(ckt, opt);
    const double held_netlist = tr.at("sys_sh_held", 40.0);

    // Behavioural tier.
    mppt::FocvSampleHoldController ctl = make_paper_controller(spec);
    mppt::SensedInputs s;
    s.time = 0.0;
    s.dt = 1.0;
    s.voc = pv::sanyo_am1815().open_circuit_voltage(c);
    (void)ctl.step(s);
    const double held_behavioural = ctl.held_sample(40.0);

    EXPECT_NEAR(held_netlist, held_behavioural, 0.02 * held_behavioural + 5e-3)
        << "lux=" << lux;
  }
}

TEST(CrossFidelity, AstableTimingAgrees) {
  // The behavioural astable carries the paper's measured 39 ms / 69 s;
  // the netlist must reproduce it from components within 5%.
  Circuit ckt;
  const NodeId vdd = ckt.node("vdd");
  ckt.add<VoltageSource>("Vdd", vdd, kGround, Waveform::dc(3.3));
  const SystemSpec spec;
  build_astable(ckt, vdd, spec);
  TransientOptions opt;
  opt.t_stop = 150.0;
  opt.start_from_dc = false;
  opt.dt_initial = 1e-5;
  opt.dt_max = 0.5;
  opt.dv_step_max = 0.4;
  const Trace tr = transient_analyze(ckt, opt);
  const auto rises = tr.crossing_times("ast_pulse", 1.65, true);
  ASSERT_GE(rises.size(), 2u);
  const auto behavioural = astable_params_from_spec(spec);
  EXPECT_NEAR(rises[1] - rises[0], behavioural.on_period + behavioural.off_period,
              0.05 * (behavioural.on_period + behavioural.off_period));
}

TEST(CrossFidelity, SupplyCurrentAgreesWithBudget) {
  // Circuit-level average supply current of astable + S&H vs the
  // behavioural power budget. The netlist omits the misc-leakage
  // aggregate (board-level effects), so compare against the budget
  // minus that line.
  Circuit ckt;
  pv::Conditions c;
  c.illuminance_lux = 1000.0;
  const SystemSpec spec;
  build_fig3_system(ckt, pv::sanyo_am1815(), c, spec);
  TransientOptions opt;
  opt.t_stop = 75.0;
  opt.start_from_dc = false;
  opt.dt_initial = 1e-6;
  opt.dt_max = 0.25;
  opt.dv_step_max = 0.4;
  const Trace tr = transient_analyze(ckt, opt);
  const double i_netlist = -tr.time_average("I(sys_vdd)", 5.0, 74.0);
  const analog::PowerBudget budget = paper_power_budget(spec);
  double expected = budget.total_current() - spec.misc_leakage;
  EXPECT_NEAR(i_netlist, expected, 0.2 * expected);
}

}  // namespace
}  // namespace focv::core
