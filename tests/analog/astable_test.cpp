#include "analog/astable.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "common/require.hpp"

namespace focv::analog {
namespace {

TEST(Astable, PulsePatternMatchesPeriods) {
  AstableMultivibrator::Params p;
  p.on_period = 0.039;
  p.off_period = 69.0;
  const AstableMultivibrator ast(p);
  EXPECT_TRUE(ast.pulse_active(0.01));
  EXPECT_TRUE(ast.pulse_active(0.038));
  EXPECT_FALSE(ast.pulse_active(0.040));
  EXPECT_FALSE(ast.pulse_active(30.0));
  // Second cycle.
  EXPECT_TRUE(ast.pulse_active(69.039 + 0.01));
  EXPECT_FALSE(ast.pulse_active(69.039 + 0.05));
}

TEST(Astable, NextRisingEdge) {
  AstableMultivibrator::Params p;
  p.on_period = 0.039;
  p.off_period = 69.0;
  const AstableMultivibrator ast(p);
  EXPECT_DOUBLE_EQ(ast.next_rising_edge(0.0), 0.0);
  EXPECT_NEAR(ast.next_rising_edge(1.0), 69.039, 1e-9);
  EXPECT_NEAR(ast.next_rising_edge(70.0), 2 * 69.039, 1e-9);
}

TEST(Astable, StartDelayShiftsPattern) {
  AstableMultivibrator::Params p;
  p.on_period = 0.1;
  p.off_period = 0.9;
  p.start_delay = 5.0;
  const AstableMultivibrator ast(p);
  EXPECT_FALSE(ast.pulse_active(4.9));
  EXPECT_TRUE(ast.pulse_active(5.05));
  EXPECT_DOUBLE_EQ(ast.next_rising_edge(0.0), 5.0);
}

TEST(Astable, DutyCycleTiny) {
  const AstableMultivibrator ast;  // defaults: 39 ms / 69 s
  EXPECT_NEAR(ast.duty_cycle(), 0.039 / 69.039, 1e-9);
  EXPECT_LT(ast.duty_cycle(), 1e-3);
}

TEST(Astable, AverageCurrentSumsComponents) {
  AstableMultivibrator::Params p;
  p.comparator_iq = 0.7e-6;
  p.network_current = 0.25e-6;
  const AstableMultivibrator ast(p);
  EXPECT_NEAR(ast.average_current(), 0.95e-6, 1e-12);
}

TEST(Astable, TimingFromComponentsIdealCase) {
  // Equal thresholds at 1/3 and 2/3: t = R*C*ln(2) on both phases.
  AstableMultivibrator::TimingComponents c;
  c.r_charge = 56.3e3;
  c.r_discharge = 99.55e6;
  c.capacitance = 1e-6;
  const auto p = AstableMultivibrator::timing_from_components(c);
  EXPECT_NEAR(p.on_period, 56.3e3 * 1e-6 * std::log(2.0), 1e-6);
  EXPECT_NEAR(p.off_period, 99.55e6 * 1e-6 * std::log(2.0), 1e-3);
}

TEST(Astable, TimingFromComponentsAsymmetricThresholds) {
  AstableMultivibrator::TimingComponents c;
  c.r_charge = 1e3;
  c.r_discharge = 1e3;
  c.capacitance = 1e-6;
  c.threshold_low_fraction = 0.25;
  c.threshold_high_fraction = 0.75;
  const auto p = AstableMultivibrator::timing_from_components(c);
  EXPECT_NEAR(p.on_period, 1e-3 * std::log(0.75 / 0.25), 1e-9);
  EXPECT_NEAR(p.off_period, 1e-3 * std::log(3.0), 1e-9);
}

TEST(Astable, RejectsBadParams) {
  AstableMultivibrator::Params p;
  p.on_period = 0.0;
  EXPECT_THROW(AstableMultivibrator{p}, PreconditionError);
  AstableMultivibrator::TimingComponents c;
  c.r_charge = -1.0;
  c.r_discharge = 1.0;
  c.capacitance = 1.0;
  EXPECT_THROW(AstableMultivibrator::timing_from_components(c), PreconditionError);
}

}  // namespace
}  // namespace focv::analog
