#include "analog/sample_hold.hpp"

#include <gtest/gtest.h>

#include "common/require.hpp"

namespace focv::analog {
namespace {

SampleHold::Params clean_params() {
  SampleHold::Params p;
  p.divider_ratio = 0.298;
  p.acquisition_time = 10e-3;
  p.hold_capacitance = 100e-9;
  p.leakage_current = 0.0;
  p.charge_injection = 0.0;
  p.input_buffer_offset = 0.0;
  p.output_buffer_offset = 0.0;
  return p;
}

TEST(SampleHold, HoldsDividedSample) {
  SampleHold sh(clean_params());
  EXPECT_FALSE(sh.has_sample());
  EXPECT_DOUBLE_EQ(sh.value(0.0), 0.0);
  sh.sample(0.0, 5.44, 39e-3);
  EXPECT_TRUE(sh.has_sample());
  EXPECT_NEAR(sh.value(1.0), 5.44 * 0.298, 1e-4);
}

TEST(SampleHold, DroopIsLinearInTime) {
  SampleHold::Params p = clean_params();
  p.leakage_current = 50e-12;  // 0.5 mV/s on 100 nF
  SampleHold sh(p);
  sh.sample(0.0, 5.0, 39e-3);
  const double v0 = sh.value(0.039);
  EXPECT_NEAR(sh.value(60.0 + 0.039), v0 - 0.5e-3 * 60.0, 1e-6);
  EXPECT_NEAR(sh.droop_rate(), 0.5e-3, 1e-9);
}

TEST(SampleHold, ChargeInjectionShiftsHeldValue) {
  SampleHold::Params p = clean_params();
  p.charge_injection = 10e-12;  // 0.1 mV on 100 nF
  SampleHold with(p);
  SampleHold without(clean_params());
  with.sample(0.0, 5.0, 39e-3);
  without.sample(0.0, 5.0, 39e-3);
  EXPECT_NEAR(without.value(1.0) - with.value(1.0), 1e-4, 1e-7);
}

TEST(SampleHold, ShortPulseLeavesSettlingError) {
  SampleHold sh(clean_params());  // acquisition 10 ms
  sh.sample(0.0, 5.0, 1e-3);      // only 0.5 tau
  const double target = 5.0 * 0.298;
  EXPECT_LT(sh.value(0.01), 0.5 * target);
  // A full-length pulse later corrects it.
  sh.sample(10.0, 5.0, 39e-3);
  EXPECT_NEAR(sh.value(10.1), target, 1e-3);
}

TEST(SampleHold, OffsetsPropagate) {
  SampleHold::Params p = clean_params();
  p.input_buffer_offset = 2e-3;
  p.output_buffer_offset = 1e-3;
  SampleHold sh(p);
  sh.sample(0.0, 5.0, 39e-3);
  EXPECT_NEAR(sh.value(1.0), (5.0 + 2e-3) * 0.298 + 1e-3, 1e-4);
}

TEST(SampleHold, ValueNeverNegative) {
  SampleHold::Params p = clean_params();
  p.leakage_current = 1e-6;  // extreme droop
  SampleHold sh(p);
  sh.sample(0.0, 1.0, 39e-3);
  EXPECT_DOUBLE_EQ(sh.value(1e6), 0.0);
}

TEST(SampleHold, ResampleUpdatesFromPreviousValue) {
  SampleHold sh(clean_params());
  sh.sample(0.0, 5.0, 39e-3);
  sh.sample(69.0, 4.0, 39e-3);
  EXPECT_NEAR(sh.value(70.0), 4.0 * 0.298, 1e-3);
}

TEST(SampleHold, AverageCurrentScalesWithDuty) {
  SampleHold::Params p = clean_params();
  p.buffer_iq = 4.4e-6;
  p.divider_current_peak = 0.5e-6;
  SampleHold sh(p);
  EXPECT_NEAR(sh.average_current(0.0), 4.4e-6, 1e-12);
  EXPECT_NEAR(sh.average_current(1.0), 4.9e-6, 1e-12);
  EXPECT_THROW(sh.average_current(1.5), PreconditionError);
}

TEST(SampleHold, ResetClearsState) {
  SampleHold sh(clean_params());
  sh.sample(0.0, 5.0, 39e-3);
  sh.reset();
  EXPECT_FALSE(sh.has_sample());
  EXPECT_DOUBLE_EQ(sh.value(10.0), 0.0);
}

TEST(SampleHold, RejectsBadParams) {
  SampleHold::Params p = clean_params();
  p.divider_ratio = 1.5;
  EXPECT_THROW(SampleHold{p}, PreconditionError);
  p = clean_params();
  p.hold_capacitance = 0.0;
  EXPECT_THROW(SampleHold{p}, PreconditionError);
}

}  // namespace
}  // namespace focv::analog
