// Divider, comparator block and power budget.
#include <sstream>

#include <gtest/gtest.h>

#include "analog/comparator_block.hpp"
#include "analog/divider.hpp"
#include "analog/power_budget.hpp"
#include "common/require.hpp"

namespace focv::analog {
namespace {

TEST(ResistiveDivider, RatioOutputAndCurrent) {
  ResistiveDivider div(6.8e6, 2.887e6);
  EXPECT_NEAR(div.ratio(), 0.298, 1e-3);
  EXPECT_NEAR(div.output(5.44), 5.44 * div.ratio(), 1e-12);
  EXPECT_NEAR(div.current(5.44), 5.44 / (6.8e6 + 2.887e6), 1e-15);
}

TEST(ResistiveDivider, TrimHitsExactRatio) {
  ResistiveDivider div(6.8e6, 1e6);
  div.trim_to_ratio(0.300);
  EXPECT_NEAR(div.ratio(), 0.300, 1e-12);
  // Trimming across the paper's k range (0.6..0.8 with alpha 0.5).
  div.trim_to_ratio(0.40);
  EXPECT_NEAR(div.ratio(), 0.40, 1e-12);
}

TEST(ResistiveDivider, OutputImpedanceIsParallel) {
  ResistiveDivider div(10e3, 10e3);
  EXPECT_NEAR(div.output_impedance(), 5e3, 1e-9);
}

TEST(ResistiveDivider, RejectsBadValues) {
  EXPECT_THROW(ResistiveDivider(0.0, 1.0), PreconditionError);
  ResistiveDivider div(1e3, 1e3);
  EXPECT_THROW(div.trim_to_ratio(1.0), PreconditionError);
}

TEST(ComparatorBlock, HysteresisWindow) {
  ComparatorBlock::Params p;
  p.threshold = 2.0;
  p.hysteresis = 0.5;
  ComparatorBlock comp(p);
  EXPECT_FALSE(comp.update(1.9));
  EXPECT_TRUE(comp.update(2.1));   // rises above threshold
  EXPECT_TRUE(comp.update(1.8));   // stays set within hysteresis
  EXPECT_FALSE(comp.update(1.4));  // falls below threshold - hysteresis
  EXPECT_FALSE(comp.update(1.9));  // must cross full threshold again
  EXPECT_TRUE(comp.update(2.0));
}

TEST(ComparatorBlock, ResetRestoresInitialState) {
  ComparatorBlock comp;
  comp.update(10.0);
  EXPECT_TRUE(comp.state());
  comp.reset();
  EXPECT_FALSE(comp.state());
}

TEST(PowerBudget, TotalsAndPower) {
  PowerBudget budget;
  budget.add("a", 1e-6);
  budget.add("b", 2.5e-6, "note");
  EXPECT_NEAR(budget.total_current(), 3.5e-6, 1e-15);
  EXPECT_NEAR(budget.total_power(3.3), 11.55e-6, 1e-12);
  EXPECT_EQ(budget.items().size(), 2u);
}

TEST(PowerBudget, PrintsItemisedTable) {
  PowerBudget budget;
  budget.add("U1 comparator", 0.7e-6, "datasheet");
  std::ostringstream os;
  budget.print(os, 3.3);
  EXPECT_NE(os.str().find("U1 comparator"), std::string::npos);
  EXPECT_NE(os.str().find("TOTAL"), std::string::npos);
  EXPECT_NE(os.str().find("0.700"), std::string::npos);
}

TEST(PowerBudget, RejectsNegativeCurrent) {
  PowerBudget budget;
  EXPECT_THROW(budget.add("x", -1e-6), PreconditionError);
}

}  // namespace
}  // namespace focv::analog
