// The observation-only invariant: enabling focv::obs must not perturb
// any simulation result. Pinned at the strongest level the repo exports
// — byte-identical exact-mode sweep CSV with telemetry on vs off — plus
// the surrogate-deviation shadow and the SweepRecord counter promotion.
#include <gtest/gtest.h>

#include <string>

#include "core/focv_system.hpp"
#include "env/profiles.hpp"
#include "mppt/baselines.hpp"
#include "node/harvester_node.hpp"
#include "obs/obs.hpp"
#include "pv/cell_library.hpp"
#include "runtime/sweep.hpp"

namespace focv {
namespace {

runtime::SweepSpec small_exact_spec() {
  runtime::SweepSpec spec;
  spec.add_cell("AM-1815", pv::sanyo_am1815());
  spec.add_controller("proposed", core::make_paper_controller());
  spec.add_controller("fixed", mppt::FixedVoltageController{});
  spec.add_scenario("lux500", env::constant_light(500.0, 0.0, 900.0));
  spec.add_scenario("lux2000", env::constant_light(2000.0, 0.0, 900.0));
  spec.base.storage.initial_voltage = 3.0;
  spec.base.power_model = node::PowerModel::kExact;
  return spec;
}

TEST(ObsDeterminism, ExactModeSweepCsvIsByteIdenticalWithTelemetryOn) {
  const runtime::SweepSpec spec = small_exact_spec();

  obs::set_enabled(false);
  const runtime::SweepResult off = runtime::run_sweep(spec);
  const std::string csv_off = off.to_csv();
  const std::string json_off = off.to_json();

  std::string csv_on, json_on;
  {
    obs::ScopedEnable telemetry;
    const runtime::SweepResult on = runtime::run_sweep(spec);
    csv_on = on.to_csv();
    json_on = on.to_json();
    // While we were at it the sweep actually recorded telemetry.
    EXPECT_GT(obs::metrics().counter_value("sweep.jobs"), 0.0);
    EXPECT_GT(obs::tracer().event_count(), 0u);
  }
  obs::reset_all();

  EXPECT_EQ(csv_off, csv_on);
  EXPECT_EQ(json_off, json_on);
}

TEST(ObsDeterminism, SweepRecordCountersComeFromThePerJobRegistry) {
  // The promotion contract: steps/model_evals/curve_entries are routed
  // through a per-job obs::MetricsRegistry and must be populated (and
  // identical) whether or not the global switch is on.
  const runtime::SweepSpec spec = small_exact_spec();
  obs::set_enabled(false);
  const runtime::SweepResult off = runtime::run_sweep(spec);
  std::uint64_t steps_on = 0, steps_off = 0;
  {
    obs::ScopedEnable telemetry;
    const runtime::SweepResult on = runtime::run_sweep(spec);
    for (std::size_t i = 0; i < on.records().size(); ++i) {
      const runtime::SweepRecord& a = off.records()[i];
      const runtime::SweepRecord& b = on.records()[i];
      EXPECT_GT(a.steps, 0u);
      EXPECT_EQ(a.steps, b.steps);
      EXPECT_EQ(a.model_evals, b.model_evals);
      EXPECT_EQ(a.curve_entries, b.curve_entries);
      steps_off += a.steps;
      steps_on += b.steps;
    }
    EXPECT_EQ(on.total_steps(), steps_on);
  }
  obs::reset_all();
  EXPECT_EQ(off.total_steps(), steps_off);
  EXPECT_GT(off.total_model_evals(), 0u);
}

TEST(ObsDeterminism, SurrogateDeviationShadowDoesNotPerturbTheRun) {
  const env::LightTrace trace = env::constant_light(750.0, 0.0, 3600.0);
  node::NodeConfig cfg;
  cfg.use_cell(pv::sanyo_am1815());
  cfg.use_controller(core::make_paper_controller());
  cfg.storage.initial_voltage = 3.0;

  obs::set_enabled(false);
  const node::NodeReport plain = node::simulate_node(trace, cfg);

  node::NodeReport shadowed;
  {
    obs::ScopedEnable telemetry;
    node::NodeConfig cfg2 = cfg;
    cfg2.obs_compare_exact = true;  // telemetry-only exact shadow
    shadowed = node::simulate_node(trace, cfg2);
    // The shadow recorded deviations into the global registry...
    bool found = false;
    for (const auto& h : obs::metrics().snapshot().histograms) {
      if (h.name == "node.surrogate.deviation_rel") found = h.count > 0;
    }
    EXPECT_TRUE(found);
  }
  obs::reset_all();

  // ...but the simulation trajectory is bit-for-bit the same.
  EXPECT_EQ(plain.steps, shadowed.steps);
  EXPECT_EQ(plain.model_evals, shadowed.model_evals);
  EXPECT_EQ(plain.harvested_energy, shadowed.harvested_energy);
  EXPECT_EQ(plain.delivered_energy, shadowed.delivered_energy);
  EXPECT_EQ(plain.overhead_energy, shadowed.overhead_energy);
  EXPECT_EQ(plain.final_store_voltage, shadowed.final_store_voltage);
  EXPECT_EQ(plain.tracking_efficiency(), shadowed.tracking_efficiency());
}

}  // namespace
}  // namespace focv
