// Contracts of the flight recorder (obs/flight.hpp) and the
// obs::anomaly() path that feeds it.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/flight.hpp"
#include "obs/obs.hpp"

namespace focv::obs {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  std::ostringstream out;
  out << f.rdbuf();
  return out.str();
}

TEST(FlightRecorder, RingKeepsTheNewestCapacityEventsOldestFirst) {
  FlightRecorder rec;
  FlightRecorder::Options options;
  options.capacity = 3;
  rec.arm(options);
  for (int i = 0; i < 7; ++i) rec.note("{\"i\":" + std::to_string(i) + "}");
  EXPECT_EQ(rec.noted(), 7u);
  EXPECT_EQ(rec.evicted(), 4u);  // exact: 7 fed into 3 slots

  const std::string json = rec.to_json("test");
  EXPECT_NE(json.find("\"schema\":\"focv-obs-flight/v1\""), std::string::npos);
  EXPECT_NE(json.find("\"events_seen\":7"), std::string::npos);
  EXPECT_NE(json.find("\"events_evicted\":4"), std::string::npos);
  // The surviving tail is 4,5,6 in that order.
  const std::size_t p4 = json.find("{\"i\":4}");
  const std::size_t p5 = json.find("{\"i\":5}");
  const std::size_t p6 = json.find("{\"i\":6}");
  ASSERT_NE(p4, std::string::npos);
  ASSERT_NE(p5, std::string::npos);
  ASSERT_NE(p6, std::string::npos);
  EXPECT_LT(p4, p5);
  EXPECT_LT(p5, p6);
  EXPECT_EQ(json.find("{\"i\":3}"), std::string::npos);
  rec.disarm();
}

TEST(FlightRecorder, DumpsAreRateLimitedAndNumbered) {
  FlightRecorder rec;
  FlightRecorder::Options options;
  options.capacity = 4;
  options.path = "flight_test_dump.json";
  options.max_dumps = 2;
  rec.arm(options);
  rec.note("{\"i\":0}");

  EXPECT_TRUE(rec.dump("first"));
  EXPECT_TRUE(rec.dump("second"));
  EXPECT_FALSE(rec.dump("third"));  // over the limit
  EXPECT_EQ(rec.dumps(), 2);

  const std::string first = slurp("flight_test_dump.json");
  const std::string second = slurp("flight_test_dump-2.json");
  EXPECT_NE(first.find("\"reason\":\"first\""), std::string::npos);
  EXPECT_NE(first.find("\"dump\":1"), std::string::npos);
  EXPECT_NE(second.find("\"reason\":\"second\""), std::string::npos);
  EXPECT_NE(second.find("\"dump\":2"), std::string::npos);
  std::remove("flight_test_dump.json");
  std::remove("flight_test_dump-2.json");
  rec.disarm();
}

TEST(Anomaly, EmitsEventBumpsCounterAndDumpsTheArmedRecorder) {
  reset_all();
  ScopedEnable scoped;

  FlightRecorder::Options options;
  options.capacity = 8;
  options.path = "flight_test_anomaly.json";
  arm_flight(options);

  events().emit("context_event", 1.0, {{"k", 2.0}});
  anomaly("brownout", 2.5, {{"store_voltage", 1.7}});

  EXPECT_EQ(metrics().counter_value("obs.anomalies"), 1.0);
  EXPECT_EQ(flight().dumps(), 1);
  const std::string dump = slurp("flight_test_anomaly.json");
  EXPECT_NE(dump.find("\"reason\":\"brownout\""), std::string::npos);
  // The anomaly drained pending events first: the context event AND the
  // anomaly's own event line are both in the tail.
  EXPECT_NE(dump.find("\"event\":\"context_event\""), std::string::npos);
  EXPECT_NE(dump.find("\"event\":\"brownout\""), std::string::npos);
  EXPECT_NE(dump.find("\"store_voltage\":1.7"), std::string::npos);

  std::remove("flight_test_anomaly.json");
  disarm_flight();
  reset_all();
}

TEST(Anomaly, IsANoOpWhileTelemetryIsOff) {
  reset_all();
  anomaly("brownout", 0.0);
  EXPECT_EQ(metrics().counter_value("obs.anomalies"), 0.0);
  EXPECT_EQ(events().size(), 0u);
}

}  // namespace
}  // namespace focv::obs
