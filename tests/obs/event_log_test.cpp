// EventLog: one focv-obs/v1 JSONL line per emitted domain event, with
// correct escaping and stable field rendering.
#include "obs/event_log.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "obs/obs.hpp"

namespace focv::obs {
namespace {

TEST(EventLog, EmitRendersOneSchemaTaggedLine) {
  EventLog log;
  log.emit("sample_window_open", 69.0,
           {{"voc", 3.12}, {"window_s", 0.039}, {"controller", "proposed"}});
  ASSERT_EQ(log.size(), 1u);
  const std::string line = log.lines()[0];
  EXPECT_NE(line.find("\"schema\":\"focv-obs/v1\""), std::string::npos);
  EXPECT_NE(line.find("\"kind\":\"event\""), std::string::npos);
  EXPECT_NE(line.find("\"event\":\"sample_window_open\""), std::string::npos);
  EXPECT_NE(line.find("\"sim_t\":69"), std::string::npos);
  EXPECT_NE(line.find("\"wall_us\":"), std::string::npos);
  EXPECT_NE(line.find("\"voc\":3.12"), std::string::npos);
  EXPECT_NE(line.find("\"controller\":\"proposed\""), std::string::npos);
}

TEST(EventLog, EscapesQuotesBackslashesAndControlCharacters) {
  EventLog log;
  log.emit("odd \"name\"", 0.0, {{"path", "a\\b\"c\n"}});
  const std::string line = log.lines()[0];
  EXPECT_NE(line.find("odd \\\"name\\\""), std::string::npos);
  EXPECT_NE(line.find("a\\\\b\\\"c"), std::string::npos);
  // The raw newline must not survive inside a JSONL line.
  EXPECT_EQ(line.find('\n'), std::string::npos);
  EXPECT_NE(line.find("\\n"), std::string::npos);
}

TEST(EventLog, IntegerFieldOverloadsRenderAsNumbers) {
  EventLog log;
  log.emit("counts", 1.5,
           {{"steps", std::uint64_t{86400}}, {"retries", 3}});
  const std::string line = log.lines()[0];
  EXPECT_NE(line.find("\"steps\":86400"), std::string::npos);
  EXPECT_NE(line.find("\"retries\":3"), std::string::npos);
}

TEST(EventLog, ToJsonlConcatenatesInEmitOrder) {
  EventLog log;
  log.emit("first", 1.0);
  log.emit("second", 2.0);
  const std::string out = log.to_jsonl();
  const std::size_t a = out.find("\"event\":\"first\"");
  const std::size_t b = out.find("\"event\":\"second\"");
  ASSERT_NE(a, std::string::npos);
  ASSERT_NE(b, std::string::npos);
  EXPECT_LT(a, b);
  EXPECT_EQ(out.back(), '\n');
  log.reset();
  EXPECT_EQ(log.size(), 0u);
  EXPECT_TRUE(log.to_jsonl().empty());
}

TEST(ObsFacade, DisabledByDefaultAndScopedEnableRestores) {
  // The repo-wide default: telemetry off unless a driver opts in.
  ASSERT_FALSE(enabled());
  {
    ScopedEnable on;
    EXPECT_TRUE(enabled());
    {
      ScopedEnable off(false);
      EXPECT_FALSE(enabled());
    }
    EXPECT_TRUE(enabled());
  }
  EXPECT_FALSE(enabled());
}

}  // namespace
}  // namespace focv::obs
