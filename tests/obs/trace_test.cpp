// Tracer: span nesting/ordering on the wall-clock timeline, explicit
// sim-time records on pid 2, and structural validity of the exported
// Chrome trace_event JSON (the artifact Perfetto loads).
#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include <cctype>
#include <optional>
#include <string>
#include <vector>

namespace focv::obs {
namespace {

/// Minimal structural JSON validation: balanced containers outside
/// strings, no trailing garbage — catches every way the hand-rolled
/// emitter could break without a JSON library in the image.
bool json_is_balanced(const std::string& s) {
  int depth = 0;
  bool in_string = false, escaped = false, seen_any = false;
  for (const char c : s) {
    if (in_string) {
      if (escaped) {
        escaped = false;
      } else if (c == '\\') {
        escaped = true;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    if (c == '"') {
      in_string = true;
    } else if (c == '{' || c == '[') {
      ++depth;
      seen_any = true;
    } else if (c == '}' || c == ']') {
      if (--depth < 0) return false;
    } else if (depth == 0 && !std::isspace(static_cast<unsigned char>(c)) && seen_any) {
      return false;
    }
  }
  return seen_any && depth == 0 && !in_string;
}

const TraceEvent* find_event(const std::vector<TraceEvent>& events,
                             const std::string& name) {
  for (const TraceEvent& e : events) {
    if (e.name == name) return &e;
  }
  return nullptr;
}

TEST(Trace, NestedSpansRecordContainedIntervals) {
  Tracer tracer;
  {
    Tracer::Span outer = tracer.span("outer", "test");
    outer.arg("k", 1.0);
    {
      Tracer::Span inner = tracer.span("inner", "test");
      inner.arg("label", std::string("leaf"));
    }
  }
  const std::vector<TraceEvent> events = tracer.events();
  ASSERT_EQ(events.size(), 2u);
  const TraceEvent* outer = find_event(events, "outer");
  const TraceEvent* inner = find_event(events, "inner");
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(outer->phase, 'X');
  EXPECT_EQ(outer->pid, Tracer::kWallPid);
  EXPECT_EQ(outer->tid, inner->tid);  // same recording thread
  // The inner interval is contained in the outer one.
  EXPECT_GE(inner->ts_us, outer->ts_us);
  EXPECT_LE(inner->ts_us + inner->dur_us, outer->ts_us + outer->dur_us + 1e-3);
  // events() sorts by (pid, tid, ts): parent first.
  EXPECT_EQ(events[0].name, "outer");
}

TEST(Trace, SpanIsMovableAndFinishIsIdempotent) {
  Tracer tracer;
  std::optional<Tracer::Span> span;
  span.emplace(tracer.span("moved", "test"));
  span->arg("n", 2.0);
  span->finish();
  span->finish();  // second finish records nothing
  span.reset();    // destruction after finish records nothing either
  EXPECT_EQ(tracer.event_count(), 1u);
}

TEST(Trace, SimTimelineEventsLandOnPidTwo) {
  Tracer tracer;
  tracer.record_complete("sample_window", "mppt", /*ts_us=*/69.0e6,
                         /*dur_us=*/39e3, Tracer::kSimPid,
                         {TraceArg("voc", 3.1)});
  tracer.record_instant("hold_decay", "mppt", /*ts_us=*/120.0e6, Tracer::kSimPid);
  const std::vector<TraceEvent> events = tracer.events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].pid, Tracer::kSimPid);
  EXPECT_DOUBLE_EQ(events[0].ts_us, 69.0e6);
  EXPECT_DOUBLE_EQ(events[0].dur_us, 39e3);
  EXPECT_EQ(events[1].phase, 'i');
}

TEST(Trace, ChromeJsonIsStructurallyValidAndCarriesBothTimelines) {
  Tracer tracer;
  {
    Tracer::Span s = tracer.span("job", "sweep");
    s.arg("scenario", std::string("office \"desk\"\\night"));  // escaping
  }
  tracer.record_complete("sample_window", "mppt", 1e6, 39e3, Tracer::kSimPid);

  const std::string json = tracer.to_chrome_json();
  EXPECT_TRUE(json_is_balanced(json)) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  // Both timelines are named via process_name metadata records.
  EXPECT_NE(json.find("process_name"), std::string::npos);
  EXPECT_NE(json.find("wall clock"), std::string::npos);
  EXPECT_NE(json.find("simulated time"), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos);
  // The quote and backslash in the arg survived as valid JSON escapes.
  EXPECT_NE(json.find("office \\\"desk\\\"\\\\night"), std::string::npos);
  EXPECT_NE(json.find("focv-obs/v1"), std::string::npos);
}

TEST(Trace, ResetDropsEventsAndRestartsTheClock) {
  Tracer tracer;
  { Tracer::Span s = tracer.span("a", "test"); }
  ASSERT_EQ(tracer.event_count(), 1u);
  tracer.reset();
  EXPECT_EQ(tracer.event_count(), 0u);
  const double t0 = tracer.now_us();
  EXPECT_GE(t0, 0.0);
  EXPECT_LT(t0, 5e6);  // origin restarted, not process start
}

}  // namespace
}  // namespace focv::obs
