// Contracts of the metrics export surface (obs/export.hpp): Prometheus
// text exposition, focv-obs-snapshot/v1 JSON and the diff-based
// publisher.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/export.hpp"
#include "obs/metrics.hpp"

namespace focv::obs {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  std::ostringstream out;
  out << f.rdbuf();
  return out.str();
}

TEST(PrometheusExport, RendersCountersGaugesAndCumulativeBuckets) {
  MetricsRegistry reg;
  reg.add(reg.counter("node.steps"), 42.0);
  reg.set(reg.gauge("fleet.soa.table_bytes"), 1024.0);
  const HistogramId h = reg.histogram("chunk.wall_us", {1.0, 100.0, 2});
  reg.observe(h, 0.5);    // underflow
  reg.observe(h, 5.0);    // first finite bin [1, 10)
  reg.observe(h, 50.0);   // second finite bin [10, 100)
  reg.observe(h, 500.0);  // overflow

  const std::string prom = to_prometheus(reg.snapshot());
  EXPECT_NE(prom.find("# TYPE focv_node_steps_total counter"), std::string::npos);
  EXPECT_NE(prom.find("focv_node_steps_total 42"), std::string::npos);
  EXPECT_NE(prom.find("# TYPE focv_fleet_soa_table_bytes gauge"), std::string::npos);
  EXPECT_NE(prom.find("focv_fleet_soa_table_bytes 1024"), std::string::npos);
  // Cumulative buckets: underflow folds into the first finite edge, the
  // +Inf bucket equals the total count.
  EXPECT_NE(prom.find("# TYPE focv_chunk_wall_us histogram"), std::string::npos);
  EXPECT_NE(prom.find("focv_chunk_wall_us_bucket{le=\"+Inf\"} 4"), std::string::npos);
  EXPECT_NE(prom.find("focv_chunk_wall_us_count 4"), std::string::npos);
  // le edges are ordered and cumulative counts are non-decreasing.
  std::size_t pos = 0;
  long long prev = -1;
  int buckets = 0;
  while ((pos = prom.find("focv_chunk_wall_us_bucket", pos)) != std::string::npos) {
    const std::size_t space = prom.find(' ', pos);
    const long long count = std::stoll(prom.substr(space + 1));
    EXPECT_GE(count, prev);
    prev = count;
    ++buckets;
    pos = space;
  }
  EXPECT_EQ(buckets, 4);  // 3 finite edges + the +Inf bucket
}

TEST(SnapshotJson, CarriesSchemaSequenceAndDelta) {
  MetricsRegistry reg;
  const CounterId steps = reg.counter("node.steps");
  reg.add(steps, 10.0);
  const MetricsSnapshot first = reg.snapshot();
  reg.add(steps, 5.0);
  const MetricsSnapshot second = reg.snapshot();

  const MetricsDelta delta = diff_snapshots(first, second);
  ASSERT_EQ(delta.counters.size(), 1u);
  EXPECT_EQ(delta.counters[0].first, "node.steps");
  EXPECT_EQ(delta.counters[0].second, 5.0);
  EXPECT_FALSE(delta.empty());
  EXPECT_TRUE(diff_snapshots(second, second).empty());

  const std::string json = to_snapshot_json(second, 2, &delta);
  EXPECT_NE(json.find("\"schema\":\"focv-obs-snapshot/v1\""), std::string::npos);
  EXPECT_NE(json.find("\"sequence\":2"), std::string::npos);
  EXPECT_NE(json.find("\"node.steps\":15"), std::string::npos);
  EXPECT_NE(json.find("\"delta\""), std::string::npos);
}

TEST(SnapshotPublisher, SkipsEmptyDiffsAndWritesBothFiles) {
  MetricsRegistry reg;
  const CounterId steps = reg.counter("node.steps");
  reg.add(steps, 1.0);

  const std::string json_path = "snapshot_pub_test.json";
  const std::string prom_path = "snapshot_pub_test.prom";
  SnapshotPublisher::Options options;
  options.min_period_s = 0.0;  // no rate limit: isolate the diff logic
  options.json_path = json_path;
  options.prometheus_path = prom_path;
  int published = 0;
  options.on_publish = [&](const MetricsSnapshot&, const MetricsDelta&, std::uint64_t) {
    ++published;
  };
  SnapshotPublisher pub(reg, options);

  EXPECT_TRUE(pub.maybe_publish());   // first publish always happens
  EXPECT_FALSE(pub.maybe_publish());  // nothing changed: skipped
  reg.add(steps, 1.0);
  EXPECT_TRUE(pub.maybe_publish());
  EXPECT_EQ(pub.sequence(), 2u);
  EXPECT_EQ(published, 2);

  EXPECT_NE(slurp(json_path).find("\"node.steps\":2"), std::string::npos);
  EXPECT_NE(slurp(prom_path).find("focv_node_steps_total 2"), std::string::npos);
  std::remove(json_path.c_str());
  std::remove(prom_path.c_str());
}

}  // namespace
}  // namespace focv::obs
