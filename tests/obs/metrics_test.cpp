// MetricsRegistry: the concurrency contract (shard merge), the
// log-binning contract and the registration semantics are all
// load-bearing — the instrument sites in node/circuit/runtime cache ids
// in statics and trust snapshot() at quiescent points.
#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <thread>
#include <vector>

#include "common/require.hpp"

namespace focv::obs {
namespace {

TEST(Metrics, RegistrationIsIdempotentByName) {
  MetricsRegistry reg;
  const CounterId a = reg.counter("x");
  const CounterId b = reg.counter("x");
  const CounterId c = reg.counter("y");
  EXPECT_EQ(a.index, b.index);
  EXPECT_NE(a.index, c.index);

  const HistogramSpec spec{1.0, 100.0, 8};
  const HistogramId h1 = reg.histogram("h", spec);
  const HistogramId h2 = reg.histogram("h", spec);
  EXPECT_EQ(h1.index, h2.index);
  // Re-registering under a different spec is a caller bug.
  EXPECT_THROW(reg.histogram("h", HistogramSpec{1.0, 100.0, 16}), PreconditionError);
}

TEST(Metrics, CountersAndGaugesRoundTrip) {
  MetricsRegistry reg;
  const CounterId steps = reg.counter("steps");
  const GaugeId level = reg.gauge("level");
  reg.add(steps);
  reg.add(steps, 41.0);
  reg.set(level, 3.0);
  reg.set(level, 7.5);  // last write wins

  const MetricsSnapshot snap = reg.snapshot();
  ASSERT_EQ(snap.counters.size(), 1u);
  EXPECT_EQ(snap.counters[0].first, "steps");
  EXPECT_DOUBLE_EQ(snap.counters[0].second, 42.0);
  ASSERT_EQ(snap.gauges.size(), 1u);
  EXPECT_DOUBLE_EQ(snap.gauges[0].second, 7.5);
  EXPECT_DOUBLE_EQ(reg.counter_value("steps"), 42.0);
  EXPECT_DOUBLE_EQ(reg.counter_value("no-such"), 0.0);
}

TEST(Metrics, MergesShardsAcrossEightThreads) {
  MetricsRegistry reg;
  const CounterId hits = reg.counter("hits");
  const HistogramId lat = reg.histogram("lat", HistogramSpec{1.0, 1e4, 16});

  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&reg, hits, lat, t] {
      for (int i = 0; i < kPerThread; ++i) {
        reg.add(hits);
        reg.observe(lat, 1.0 + static_cast<double>((t * kPerThread + i) % 9000));
      }
    });
  }
  for (std::thread& w : workers) w.join();

  const MetricsSnapshot snap = reg.snapshot();
  EXPECT_DOUBLE_EQ(reg.counter_value("hits"), kThreads * kPerThread);
  ASSERT_EQ(snap.histograms.size(), 1u);
  const HistogramSnapshot& h = snap.histograms[0];
  EXPECT_EQ(h.count, static_cast<std::uint64_t>(kThreads * kPerThread));
  std::uint64_t bucket_total = 0;
  for (const std::uint64_t c : h.counts) bucket_total += c;
  EXPECT_EQ(bucket_total, h.count);  // every observation landed in a bucket
  EXPECT_GT(h.sum, 0.0);
}

TEST(Metrics, HistogramBatchFlushMatchesPerObservePath) {
  // The batch is a local staging buffer for hot loops; after flush() the
  // registry must be indistinguishable from having observed every value
  // directly — same buckets, same count, same sum.
  const HistogramSpec spec{1e-3, 1.0 + 1e-9, 48};
  MetricsRegistry direct;
  MetricsRegistry batched;
  const HistogramId d = direct.histogram("h", spec);
  const HistogramId b = batched.histogram("h", spec);

  HistogramBatch batch(spec);
  EXPECT_EQ(batch.pending(), 0u);
  std::vector<double> values;
  for (int i = 0; i < 500; ++i) {
    values.push_back(0.92 + 0.08 * std::sin(0.1 * i));  // efficiency-shaped
  }
  values.push_back(0.0);    // underflow
  values.push_back(1e-6);   // underflow
  values.push_back(5.0);    // overflow
  for (const double v : values) {
    direct.observe(d, v);
    batch.observe(v);
  }
  EXPECT_EQ(batch.pending(), values.size());
  batched.flush(b, batch);
  EXPECT_EQ(batch.pending(), 0u);  // flushed batches restart empty

  const MetricsSnapshot sd = direct.snapshot();
  const MetricsSnapshot sb = batched.snapshot();
  ASSERT_EQ(sd.histograms.size(), 1u);
  ASSERT_EQ(sb.histograms.size(), 1u);
  EXPECT_EQ(sb.histograms[0].count, sd.histograms[0].count);
  EXPECT_DOUBLE_EQ(sb.histograms[0].sum, sd.histograms[0].sum);
  ASSERT_EQ(sb.histograms[0].counts.size(), sd.histograms[0].counts.size());
  for (std::size_t i = 0; i < sd.histograms[0].counts.size(); ++i) {
    EXPECT_EQ(sb.histograms[0].counts[i], sd.histograms[0].counts[i]) << "bucket " << i;
  }

  // Flushing an empty batch is a no-op; a spec mismatch is a caller bug.
  batched.flush(b, batch);
  EXPECT_EQ(batched.snapshot().histograms[0].count, sd.histograms[0].count);
  HistogramBatch wrong{HistogramSpec{1.0, 100.0, 8}};
  wrong.observe(2.0);
  EXPECT_THROW(batched.flush(b, wrong), PreconditionError);
}

TEST(Metrics, LogBinEdgesSpanLoToHiGeometrically) {
  const HistogramSpec spec{1.0, 1000.0, 3};  // decade bins
  const std::vector<double> edges = MetricsRegistry::bin_edges(spec);
  ASSERT_EQ(edges.size(), 4u);
  EXPECT_DOUBLE_EQ(edges[0], 1.0);
  EXPECT_NEAR(edges[1], 10.0, 1e-9);
  EXPECT_NEAR(edges[2], 100.0, 1e-9);
  EXPECT_NEAR(edges[3], 1000.0, 1e-6);
}

TEST(Metrics, BucketIndexContract) {
  const HistogramSpec spec{1.0, 1000.0, 3};
  // Underflow bucket 0, finite buckets 1..bins, overflow bins+1.
  EXPECT_EQ(MetricsRegistry::bucket_index(spec, 0.5), 0);
  EXPECT_EQ(MetricsRegistry::bucket_index(spec, 0.999), 0);
  EXPECT_EQ(MetricsRegistry::bucket_index(spec, 1.0), 1);
  EXPECT_EQ(MetricsRegistry::bucket_index(spec, 9.9), 1);
  EXPECT_EQ(MetricsRegistry::bucket_index(spec, 10.1), 2);
  EXPECT_EQ(MetricsRegistry::bucket_index(spec, 999.0), 3);
  EXPECT_EQ(MetricsRegistry::bucket_index(spec, 1000.0), 4);
  EXPECT_EQ(MetricsRegistry::bucket_index(spec, 1e9), 4);
  // Non-positive values cannot be log-binned; they land in underflow.
  EXPECT_EQ(MetricsRegistry::bucket_index(spec, 0.0), 0);
  EXPECT_EQ(MetricsRegistry::bucket_index(spec, -5.0), 0);
}

TEST(Metrics, ObservationsLandInTheContractBuckets) {
  MetricsRegistry reg;
  const HistogramSpec spec{1.0, 1000.0, 3};
  const HistogramId h = reg.histogram("h", spec);
  reg.observe(h, 0.5);    // underflow
  reg.observe(h, 5.0);    // bucket 1
  reg.observe(h, 50.0);   // bucket 2
  reg.observe(h, 500.0);  // bucket 3
  reg.observe(h, 5000.0); // overflow

  const MetricsSnapshot snap = reg.snapshot();
  ASSERT_EQ(snap.histograms.size(), 1u);
  const HistogramSnapshot& s = snap.histograms[0];
  ASSERT_EQ(s.counts.size(), 5u);
  for (const std::uint64_t c : s.counts) EXPECT_EQ(c, 1u);
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.sum, 5555.5);
  EXPECT_DOUBLE_EQ(s.mean(), 1111.1);
}

TEST(Metrics, ResetZeroesValuesButKeepsIds) {
  MetricsRegistry reg;
  const CounterId c = reg.counter("c");
  const HistogramId h = reg.histogram("h", HistogramSpec{1.0, 10.0, 4});
  reg.add(c, 9.0);
  reg.observe(h, 2.0);
  reg.reset();
  EXPECT_DOUBLE_EQ(reg.counter_value("c"), 0.0);
  const MetricsSnapshot snap = reg.snapshot();
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_EQ(snap.histograms[0].count, 0u);
  // The cached id is still live after reset.
  reg.add(c, 1.0);
  EXPECT_DOUBLE_EQ(reg.counter_value("c"), 1.0);
}

TEST(Metrics, JsonlLinesCarryTheSchema) {
  MetricsRegistry reg;
  reg.add(reg.counter("node.steps"), 12.0);
  reg.observe(reg.histogram("lat", HistogramSpec{1.0, 100.0, 4}), 7.0);
  std::string out;
  reg.append_jsonl(out);
  EXPECT_NE(out.find("\"schema\":\"focv-obs/v1\""), std::string::npos);
  EXPECT_NE(out.find("\"kind\":\"counter\""), std::string::npos);
  EXPECT_NE(out.find("\"kind\":\"histogram\""), std::string::npos);
  EXPECT_NE(out.find("node.steps"), std::string::npos);
  // JSONL: every line is newline-terminated.
  EXPECT_EQ(out.back(), '\n');
}

}  // namespace
}  // namespace focv::obs
