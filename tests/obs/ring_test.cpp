// Contract of the obs v2 staging layer (obs/ring.hpp): per-thread
// bounded rings, global sequence order, exact overflow accounting and
// retired-ring reclaim.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/ring.hpp"

namespace focv::obs {
namespace {

/// Stage `count` numbered records through `sink` from this thread.
void stage(RingSink& sink, int count, int base = 0) {
  for (int i = 0; i < count; ++i) {
    RingSink::Slot slot = sink.acquire();
    if (!slot) continue;  // kDrop rejected it; dropped() accounts for it
    slot.record->kind = StagedRecord::Kind::kEvent;
    slot.record->name = "r";
    slot.record->sim_t = static_cast<double>(base + i);
    sink.publish(slot);
  }
}

TEST(RingSink, DrainDeliversSingleThreadedRecordsInEmitOrder) {
  std::vector<double> seen;
  RingSink sink(8, [&](const StagedRecord& r) { seen.push_back(r.sim_t); });
  stage(sink, 20);  // 20 > capacity: forces inline self-drains
  sink.drain();
  ASSERT_EQ(seen.size(), 20u);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(seen[i], static_cast<double>(i));
  EXPECT_EQ(sink.dropped(), 0u);
  EXPECT_EQ(sink.staged(), 20u);
  EXPECT_EQ(sink.pending(), 0u);
}

TEST(RingSink, DrainInlineUnderContentionLosesNothing) {
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::mutex mutex;
  std::uint64_t consumed = 0;
  double sum = 0.0;
  // Tiny rings so every thread overflows constantly and self-drains the
  // collector while the others keep staging.
  RingSink sink(64, [&](const StagedRecord& r) {
    // The collector mutex is held by the draining thread; this mutex
    // guards against nothing in the current implementation but keeps
    // the test honest if draining ever becomes concurrent.
    std::lock_guard<std::mutex> lock(mutex);
    ++consumed;
    sum += r.sim_t;
  });
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&sink, t] { stage(sink, kPerThread, t * kPerThread); });
  }
  for (std::thread& t : threads) t.join();
  sink.drain();

  const std::uint64_t total = static_cast<std::uint64_t>(kThreads) * kPerThread;
  EXPECT_EQ(sink.dropped(), 0u);
  EXPECT_EQ(sink.staged(), total);
  EXPECT_EQ(consumed, total);
  // Conservation of content, not just count: sum of 0..total-1.
  const double expect_sum = 0.5 * static_cast<double>(total) * static_cast<double>(total - 1);
  EXPECT_EQ(sum, expect_sum);
}

TEST(RingSink, DropPolicyAccountsForEveryRejectedRecordExactly) {
  constexpr int kThreads = 8;
  constexpr int kPerThread = 5000;
  std::atomic<std::uint64_t> consumed{0};
  RingSink sink(32, [&](const StagedRecord&) { consumed.fetch_add(1); });
  sink.set_overflow(RingSink::Overflow::kDrop);

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&sink] { stage(sink, kPerThread); });
  }
  for (std::thread& t : threads) t.join();
  sink.drain();

  const std::uint64_t attempts = static_cast<std::uint64_t>(kThreads) * kPerThread;
  // Every attempt either staged (then drained) or was counted dropped.
  EXPECT_EQ(sink.staged() + sink.dropped(), attempts);
  EXPECT_EQ(consumed.load(), sink.staged());
  EXPECT_GT(sink.dropped(), 0u);  // 32-slot rings under 40k attempts must drop
  EXPECT_EQ(sink.pending(), 0u);
}

TEST(RingSink, DiscardFreesWithoutConsuming) {
  int consumed = 0;
  RingSink sink(16, [&](const StagedRecord&) { ++consumed; });
  stage(sink, 10);
  EXPECT_EQ(sink.pending(), 10u);
  EXPECT_EQ(sink.discard(), 10u);
  EXPECT_EQ(consumed, 0);
  EXPECT_EQ(sink.pending(), 0u);
  // The ring is reusable after a discard.
  stage(sink, 3);
  EXPECT_EQ(sink.drain(), 3u);
  EXPECT_EQ(consumed, 3);
}

TEST(RingSink, RetiredThreadRingsDrainThenUnlink) {
  std::vector<double> seen;
  RingSink sink(16, [&](const StagedRecord& r) { seen.push_back(r.sim_t); });
  stage(sink, 2, 100);  // this thread's ring
  std::thread worker([&sink] { stage(sink, 3, 200); });
  worker.join();  // worker's ring is now retired but still holds records
  EXPECT_EQ(sink.ring_count(), 2u);

  EXPECT_EQ(sink.drain(), 5u);
  ASSERT_EQ(seen.size(), 5u);
  // Cross-thread delivery is in global sequence order; both threads'
  // records arrive, none lost to the thread exit.
  EXPECT_EQ(sink.ring_count(), 1u);  // the retired+empty ring was reclaimed
  double sum = 0.0;
  for (const double v : seen) sum += v;
  EXPECT_EQ(sum, 100.0 + 101.0 + 200.0 + 201.0 + 202.0);
}

TEST(RingSink, SlotFieldsResetBetweenLaps) {
  RingSink sink(2, [](const StagedRecord& r) {
    // Records must arrive with exactly the fields the producer set this
    // lap — n_fields is zeroed by acquire() even when the slot's arrays
    // still hold strings from a previous lap.
    EXPECT_EQ(r.n_fields, r.sim_t > 0.5 ? 1u : 0u);
  });
  for (int lap = 0; lap < 3; ++lap) {
    RingSink::Slot a = sink.acquire();
    a.record->sim_t = 1.0;
    a.record->fields[a.record->n_fields++].set("k", 1.0);
    sink.publish(a);
    RingSink::Slot b = sink.acquire();
    b.record->sim_t = 0.0;
    sink.publish(b);
    sink.drain();
  }
}

}  // namespace
}  // namespace focv::obs
