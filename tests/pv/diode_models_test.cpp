// Physics sanity of the PV cell models.
#include <cmath>

#include <gtest/gtest.h>

#include "common/require.hpp"
#include "pv/diode_models.hpp"

namespace focv::pv {
namespace {

SingleDiodeModel::Params basic_params() {
  SingleDiodeModel::Params p;
  p.photocurrent_per_lux = 0.4e-6;
  p.saturation_current = 1e-12;
  p.series_cells = 7;
  p.ideality = 1.6;
  p.shunt_resistance = 20e6;
  p.series_resistance = 100.0;
  return p;
}

Conditions at_lux(double lux) {
  Conditions c;
  c.illuminance_lux = lux;
  return c;
}

TEST(SingleDiodeModel, IscEqualsPhotocurrentMinusShunt) {
  const SingleDiodeModel model(basic_params());
  const Conditions c = at_lux(1000.0);
  EXPECT_NEAR(model.short_circuit_current(c), model.photocurrent(c), 1e-8);
}

TEST(SingleDiodeModel, CurrentMonotonicallyDecreasesWithVoltage) {
  const SingleDiodeModel model(basic_params());
  const Conditions c = at_lux(500.0);
  double prev = model.current(0.0, c);
  for (double v = 0.1; v < 6.0; v += 0.1) {
    const double i = model.current(v, c);
    EXPECT_LT(i, prev) << "at v=" << v;
    prev = i;
  }
}

TEST(SingleDiodeModel, VocIncreasesLogarithmicallyWithLux) {
  const SingleDiodeModel model(basic_params());
  const double v1 = model.open_circuit_voltage(at_lux(100.0));
  const double v2 = model.open_circuit_voltage(at_lux(1000.0));
  const double v3 = model.open_circuit_voltage(at_lux(10000.0));
  EXPECT_GT(v2, v1);
  EXPECT_GT(v3, v2);
  // Log-linear: equal decade steps give (almost) equal Voc steps.
  EXPECT_NEAR(v2 - v1, v3 - v2, 0.02);
}

TEST(SingleDiodeModel, AnalyticDerivativeMatchesNumeric) {
  const SingleDiodeModel model(basic_params());
  const Conditions c = at_lux(700.0);
  for (double v = 0.0; v < 5.0; v += 0.5) {
    const double h = 1e-5;
    const double numeric = (model.current(v + h, c) - model.current(v - h, c)) / (2.0 * h);
    EXPECT_NEAR(model.current_derivative(v, c), numeric, std::abs(numeric) * 1e-4 + 1e-12)
        << "v=" << v;
  }
}

TEST(SingleDiodeModel, SeriesResistanceLowersCurveKnee) {
  SingleDiodeModel::Params lo_rs = basic_params();
  lo_rs.series_resistance = 0.0;
  SingleDiodeModel::Params hi_rs = basic_params();
  hi_rs.series_resistance = 10e3;
  const SingleDiodeModel a(lo_rs), b(hi_rs);
  const Conditions c = at_lux(1000.0);
  const double v_knee = 0.9 * a.open_circuit_voltage(c);
  EXPECT_GT(a.current(v_knee, c), b.current(v_knee, c));
}

TEST(SingleDiodeModel, TemperatureLowersVoc) {
  const SingleDiodeModel model(basic_params());
  Conditions cold = at_lux(1000.0);
  cold.temperature_k = 280.0;
  Conditions hot = at_lux(1000.0);
  hot.temperature_k = 330.0;
  EXPECT_GT(model.open_circuit_voltage(cold), model.open_circuit_voltage(hot));
}

TEST(SingleDiodeModel, DaylightSpectrumScalesPhotocurrent) {
  const SingleDiodeModel model(basic_params());
  Conditions fl = at_lux(1000.0);
  Conditions dl = at_lux(1000.0);
  dl.spectrum = Spectrum::kDaylight;
  EXPECT_NEAR(model.photocurrent(dl),
              model.photocurrent(fl) * basic_params().daylight_ratio, 1e-12);
}

TEST(SingleDiodeModel, MppLiesBetweenZeroAndVoc) {
  const SingleDiodeModel model(basic_params());
  const Conditions c = at_lux(300.0);
  const MppResult mpp = model.maximum_power_point(c);
  const double voc = model.open_circuit_voltage(c);
  EXPECT_GT(mpp.voltage, 0.0);
  EXPECT_LT(mpp.voltage, voc);
  EXPECT_GT(mpp.power, 0.0);
  EXPECT_GE(mpp.power, model.power_at(mpp.voltage * 0.95, c));
  EXPECT_GE(mpp.power, model.power_at(mpp.voltage * 1.05, c));
}

TEST(SingleDiodeModel, OpenCircuitThrowsInDarkness) {
  const SingleDiodeModel model(basic_params());
  EXPECT_THROW(model.open_circuit_voltage(at_lux(0.0)), PreconditionError);
}

TEST(SingleDiodeModel, TrackingEfficiencyPeaksAtMpp) {
  const SingleDiodeModel model(basic_params());
  const Conditions c = at_lux(2000.0);
  const MppResult mpp = model.maximum_power_point(c);
  EXPECT_NEAR(model.tracking_efficiency(mpp.voltage, c), 1.0, 1e-6);
  EXPECT_LT(model.tracking_efficiency(mpp.voltage * 0.7, c), 1.0);
  EXPECT_DOUBLE_EQ(model.tracking_efficiency(-1.0, c), 0.0);
}

TEST(SingleDiodeModel, CurveSamplesConsistent) {
  const SingleDiodeModel model(basic_params());
  const Conditions c = at_lux(800.0);
  const IVCurve curve = model.curve(c, 51);
  ASSERT_EQ(curve.voltage.size(), 51u);
  EXPECT_NEAR(curve.current.front(), model.short_circuit_current(c), 1e-12);
  EXPECT_NEAR(curve.current.back(), 0.0, 1e-9);
  for (std::size_t i = 0; i < curve.voltage.size(); ++i) {
    EXPECT_NEAR(curve.power[i], curve.voltage[i] * curve.current[i], 1e-15);
  }
}

TEST(SingleDiodeModel, RejectsBadParams) {
  SingleDiodeModel::Params p = basic_params();
  p.saturation_current = 0.0;
  EXPECT_THROW(SingleDiodeModel{p}, PreconditionError);
  p = basic_params();
  p.ideality = -1.0;
  EXPECT_THROW(SingleDiodeModel{p}, PreconditionError);
  p = basic_params();
  p.shunt_resistance = 0.0;
  EXPECT_THROW(SingleDiodeModel{p}, PreconditionError);
}

MertenAsiModel::AsiParams merten_params() {
  MertenAsiModel::AsiParams p;
  p.base = basic_params();
  p.builtin_voltage = 6.3;
  p.recombination_chi = 0.4;
  p.photo_shunt_per_volt = 0.05;
  return p;
}

TEST(MertenAsiModel, LossesReduceCurrentAboveZeroVolts) {
  const SingleDiodeModel plain(basic_params());
  const MertenAsiModel lossy(merten_params());
  const Conditions c = at_lux(1000.0);
  for (double v = 0.5; v < 5.0; v += 0.5) {
    EXPECT_LT(lossy.current(v, c), plain.current(v, c)) << "v=" << v;
  }
}

TEST(MertenAsiModel, PhotoShuntLowersFillFactor) {
  MertenAsiModel::AsiParams weak = merten_params();
  weak.recombination_chi = 0.0;
  weak.photo_shunt_per_volt = 0.0;
  MertenAsiModel::AsiParams strong = merten_params();
  strong.photo_shunt_per_volt = 0.15;
  const MertenAsiModel a(weak), b(strong);
  const Conditions c = at_lux(1000.0);
  EXPECT_GT(a.fill_factor(c), b.fill_factor(c));
}

TEST(MertenAsiModel, GuardKeepsModelFiniteNearVbi) {
  const MertenAsiModel model(merten_params());
  const Conditions c = at_lux(1000.0);
  const double v = model.voltage_bound(c);
  EXPECT_TRUE(std::isfinite(model.current(v, c)));
  EXPECT_TRUE(std::isfinite(model.current_derivative(v, c)));
}

TEST(MertenAsiModel, RejectsChiAboveVbi) {
  MertenAsiModel::AsiParams p = merten_params();
  p.recombination_chi = 7.0;  // > builtin_voltage
  EXPECT_THROW(MertenAsiModel{p}, PreconditionError);
}

// Property sweep: curve stays physical over a lux x temperature grid.
struct SweepPoint {
  double lux;
  double temp_k;
};

class MertenSweepTest : public ::testing::TestWithParam<SweepPoint> {};

TEST_P(MertenSweepTest, PhysicalCurveEverywhere) {
  const MertenAsiModel model(merten_params());
  Conditions c;
  c.illuminance_lux = GetParam().lux;
  c.temperature_k = GetParam().temp_k;
  const double voc = model.open_circuit_voltage(c);
  const double isc = model.short_circuit_current(c);
  EXPECT_GT(voc, 0.0);
  EXPECT_GT(isc, 0.0);
  const MppResult mpp = model.maximum_power_point(c);
  EXPECT_GT(mpp.power, 0.0);
  const double k = mpp.voltage / voc;
  EXPECT_GT(k, 0.3);
  EXPECT_LT(k, 0.95);
  const double ff = model.fill_factor(c);
  EXPECT_GT(ff, 0.1);
  EXPECT_LT(ff, 0.9);
}

INSTANTIATE_TEST_SUITE_P(
    LuxTemperatureGrid, MertenSweepTest,
    ::testing::Values(SweepPoint{50, 285}, SweepPoint{50, 300.15}, SweepPoint{50, 320},
                      SweepPoint{200, 285}, SweepPoint{200, 300.15}, SweepPoint{200, 320},
                      SweepPoint{1000, 285}, SweepPoint{1000, 300.15}, SweepPoint{1000, 320},
                      SweepPoint{5000, 285}, SweepPoint{5000, 300.15}, SweepPoint{5000, 320},
                      SweepPoint{20000, 285}, SweepPoint{20000, 300.15},
                      SweepPoint{20000, 320}, SweepPoint{100000, 300.15}));

}  // namespace
}  // namespace focv::pv
