// The calibrated cell instances against the paper's published numbers.
#include <gtest/gtest.h>

#include "pv/calibration.hpp"
#include "pv/cell_library.hpp"

namespace focv::pv {
namespace {

TEST(Am1815, VocTracksTable1) {
  const MertenAsiModel& cell = sanyo_am1815();
  Conditions c;
  for (const VocAnchor& anchor : table1_voc_anchors()) {
    c.illuminance_lux = anchor.lux;
    EXPECT_NEAR(cell.open_circuit_voltage(c), anchor.voc, 0.040)
        << "lux=" << anchor.lux;
  }
}

TEST(Am1815, MppPowerNearPaperAt200Lux) {
  const MertenAsiModel& cell = sanyo_am1815();
  Conditions c;
  c.illuminance_lux = 200.0;
  const MppResult mpp = cell.maximum_power_point(c);
  // Paper: 42 uA at 3.0 V => 126 uW. Current matches tightly; the MPP
  // voltage compromise (see EXPERIMENTS.md) keeps power within 5%.
  EXPECT_NEAR(mpp.current, 42e-6, 1e-6);
  EXPECT_NEAR(mpp.power, 126e-6, 0.05 * 126e-6);
  EXPECT_NEAR(mpp.voltage, 3.0, 0.2);
}

TEST(Am1815, KFactorNearSixtyPercentAtLowLux) {
  const MertenAsiModel& cell = sanyo_am1815();
  Conditions c;
  c.illuminance_lux = 200.0;
  EXPECT_NEAR(cell.k_factor(c), 0.60, 0.05);
}

TEST(Am1815, KFactorStaysInAsiBandAcrossRange) {
  const MertenAsiModel& cell = sanyo_am1815();
  Conditions c;
  for (const double lux : {200.0, 500.0, 1000.0, 2000.0, 5000.0}) {
    c.illuminance_lux = lux;
    const double k = cell.k_factor(c);
    EXPECT_GT(k, 0.5) << "lux=" << lux;
    EXPECT_LT(k, 0.7) << "lux=" << lux;
  }
}

TEST(Am1815, AreaMatchesDatasheet) {
  EXPECT_NEAR(sanyo_am1815().area_cm2(), 25.0, 1e-9);
}

TEST(Schott, LargerCellProducesMoreCurrent) {
  Conditions c;
  c.illuminance_lux = 1000.0;
  EXPECT_GT(schott_asi_1116929().short_circuit_current(c),
            sanyo_am1815().short_circuit_current(c));
}

TEST(Schott, VocInFig2Range) {
  // Fig. 2's office trace swings roughly 3.5..6.5 V.
  Conditions c;
  c.illuminance_lux = 500.0;
  const double voc = schott_asi_1116929().open_circuit_voltage(c);
  EXPECT_GT(voc, 4.0);
  EXPECT_LT(voc, 7.0);
}

TEST(Crystalline, PoorIndoorPerformance) {
  // Section II-A: a-Si retains efficiency at low light, crystalline
  // does not. At 200 lux fluorescent the c-Si reference must deliver
  // far less power than the (same-area) AM-1815.
  Conditions c;
  c.illuminance_lux = 200.0;
  const double p_asi = sanyo_am1815().maximum_power_point(c).power;
  const double p_csi = crystalline_reference().maximum_power_point(c).power;
  EXPECT_LT(p_csi, 0.5 * p_asi);
}

TEST(Crystalline, CompetitiveOutdoors) {
  Conditions c;
  c.illuminance_lux = 50000.0;
  c.spectrum = Spectrum::kDaylight;
  const double p_asi = sanyo_am1815().maximum_power_point(c).power;
  const double p_csi = crystalline_reference().maximum_power_point(c).power;
  EXPECT_GT(p_csi, 0.5 * p_asi);
}

TEST(Crystalline, HigherKFactorThanAsi) {
  Conditions c;
  c.illuminance_lux = 1000.0;
  EXPECT_GT(crystalline_reference().k_factor(c), sanyo_am1815().k_factor(c));
}

TEST(PilotCell, ScaledDownAm1815) {
  Conditions c;
  c.illuminance_lux = 1000.0;
  // Same chemistry: nearly identical Voc, scaled current.
  EXPECT_NEAR(pilot_cell().open_circuit_voltage(c),
              sanyo_am1815().open_circuit_voltage(c), 0.05);
  EXPECT_NEAR(pilot_cell().short_circuit_current(c),
              sanyo_am1815().short_circuit_current(c) * 2.0 / 25.0, 1e-6);
}

}  // namespace
}  // namespace focv::pv
