// The calibration procedure and its agreement with the baked library.
#include <gtest/gtest.h>

#include "pv/calibration.hpp"
#include "pv/cell_library.hpp"

namespace focv::pv {
namespace {

TEST(Calibration, AnchorTablesMatchPaper) {
  const auto anchors = table1_voc_anchors();
  ASSERT_EQ(anchors.size(), 12u);
  EXPECT_DOUBLE_EQ(anchors.front().lux, 200.0);
  EXPECT_DOUBLE_EQ(anchors.front().voc, 4.978);
  EXPECT_DOUBLE_EQ(anchors.back().lux, 5000.0);
  EXPECT_DOUBLE_EQ(anchors.back().voc, 5.910);
  const MppAnchor mpp = am1815_mpp_anchor();
  EXPECT_DOUBLE_EQ(mpp.vmpp, 3.0);
  EXPECT_DOUBLE_EQ(mpp.impp, 42e-6);
}

TEST(Calibration, FitHitsAnchorsTightly) {
  const CalibrationReport report = calibrate_am1815();
  // Residual bars: Voc within 40 mV worst-case (0.7%), Impp within 1 uA.
  EXPECT_LT(report.max_voc_error, 0.040);
  EXPECT_LT(report.impp_error, 1e-6);
  // The anchor set cannot be met exactly (see EXPERIMENTS.md); Vmpp
  // lands within 0.2 V of the paper's 3.0 V.
  EXPECT_LT(report.vmpp_error, 0.2);
}

TEST(Calibration, FitAgreesWithBakedLibraryModel) {
  const CalibrationReport report = calibrate_am1815();
  const MertenAsiModel fitted(report.params);
  const MertenAsiModel& baked = sanyo_am1815();
  Conditions c;
  for (const double lux : {200.0, 1000.0, 5000.0}) {
    c.illuminance_lux = lux;
    EXPECT_NEAR(fitted.open_circuit_voltage(c), baked.open_circuit_voltage(c), 5e-3)
        << "lux=" << lux;
    EXPECT_NEAR(fitted.maximum_power_point(c).power, baked.maximum_power_point(c).power,
                0.02 * baked.maximum_power_point(c).power)
        << "lux=" << lux;
  }
}

TEST(Calibration, ObjectiveRejectsInfeasibleParams) {
  MertenAsiModel::AsiParams bad;
  bad.base.photocurrent_per_lux = 1e-30;  // essentially dark cell
  const double sse =
      calibration_objective(bad, table1_voc_anchors(), am1815_mpp_anchor());
  EXPECT_GE(sse, 1e10);
}

TEST(Calibration, ObjectiveIsZeroOnlyForPerfectFit) {
  // The fitted parameters give a small but non-zero objective.
  const CalibrationReport report = calibrate_am1815();
  const double sse =
      calibration_objective(report.params, table1_voc_anchors(), am1815_mpp_anchor());
  EXPECT_GT(sse, 0.0);
  EXPECT_LT(sse, 1e5);
}

}  // namespace
}  // namespace focv::pv
