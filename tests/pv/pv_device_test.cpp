// PV cell as a circuit element.
#include <gtest/gtest.h>

#include "circuit/dc_analysis.hpp"
#include "circuit/devices_passive.hpp"
#include "circuit/transient.hpp"
#include "common/math.hpp"
#include "pv/cell_library.hpp"
#include "pv/pv_device.hpp"

namespace focv::pv {
namespace {

using circuit::Circuit;
using circuit::kGround;
using circuit::NodeId;
using circuit::Resistor;
using circuit::Vector;

TEST(PvCellDevice, ResistiveLoadOperatingPointMatchesModel) {
  // PV cell loaded with R: circuit solution must satisfy I(V) = V/R.
  const MertenAsiModel& cell = sanyo_am1815();
  Conditions c;
  c.illuminance_lux = 1000.0;
  for (const double r : {10e3, 50e3, 200e3}) {
    Circuit ckt;
    const NodeId pv = ckt.node("pv");
    ckt.add<PvCellDevice>("PV", pv, kGround, cell, c);
    ckt.add<Resistor>("R", pv, kGround, r);
    const Vector x = circuit::dc_operating_point(ckt);
    const double v = x[static_cast<std::size_t>(pv - 1)];
    // Independent solve of the same load line.
    const double v_expected = brent_root(
        [&](double vv) { return cell.current(vv, c) - vv / r; }, 0.0,
        cell.voltage_bound(c));
    EXPECT_NEAR(v, v_expected, 1e-4) << "R=" << r;
  }
}

TEST(PvCellDevice, OpenCircuitNodeSitsAtVoc) {
  const MertenAsiModel& cell = sanyo_am1815();
  Conditions c;
  c.illuminance_lux = 500.0;
  Circuit ckt;
  const NodeId pv = ckt.node("pv");
  ckt.add<PvCellDevice>("PV", pv, kGround, cell, c);
  ckt.add<Resistor>("R", pv, kGround, 1e12);  // effectively open
  const Vector x = circuit::dc_operating_point(ckt);
  EXPECT_NEAR(x[static_cast<std::size_t>(pv - 1)], cell.open_circuit_voltage(c), 2e-3);
}

TEST(PvCellDevice, ConditionsChangeTakesEffect) {
  const MertenAsiModel& cell = sanyo_am1815();
  Conditions dim;
  dim.illuminance_lux = 200.0;
  Circuit ckt;
  const NodeId pv = ckt.node("pv");
  auto& dev = ckt.add<PvCellDevice>("PV", pv, kGround, cell, dim);
  ckt.add<Resistor>("R", pv, kGround, 30e3);
  const Vector x1 = circuit::dc_operating_point(ckt);
  Conditions bright = dim;
  bright.illuminance_lux = 5000.0;
  dev.set_conditions(bright);
  const Vector x2 = circuit::dc_operating_point(ckt);
  EXPECT_GT(x2[static_cast<std::size_t>(pv - 1)], x1[static_cast<std::size_t>(pv - 1)]);
}

}  // namespace
}  // namespace focv::pv
