// The TEG extension (paper Section I: the technique "is also applicable
// to ... thermoelectric generators").
#include <gtest/gtest.h>

#include "teg/teg_harvest.hpp"
#include "teg/teg_model.hpp"

namespace focv::teg {
namespace {

TEST(TegModel, TheveninLaw) {
  TegModel::Params p;
  p.seebeck_v_per_k = 0.1;
  p.internal_resistance = 5.0;
  p.resistance_tempco = 0.0;
  const TegModel teg(p);
  ThermalConditions c;
  c.delta_t = 10.0;
  EXPECT_DOUBLE_EQ(teg.open_circuit_voltage(c), 1.0);
  EXPECT_DOUBLE_EQ(teg.current(0.0, c), 0.2);          // short circuit
  EXPECT_DOUBLE_EQ(teg.current(1.0, c), 0.0);          // open circuit
  EXPECT_DOUBLE_EQ(teg.current(0.5, c), 0.1);          // matched
}

TEST(TegModel, MppExactlyHalfVoc) {
  const TegModel teg;
  ThermalConditions c;
  c.delta_t = 8.0;
  EXPECT_DOUBLE_EQ(teg.mpp_voltage(c), 0.5 * teg.open_circuit_voltage(c));
  // P(Voc/2) = Voc^2 / 4R and beats neighbours.
  const double vm = teg.mpp_voltage(c);
  EXPECT_GT(teg.power_at(vm, c), teg.power_at(vm * 0.9, c));
  EXPECT_GT(teg.power_at(vm, c), teg.power_at(vm * 1.1, c));
  EXPECT_NEAR(teg.power_at(vm, c), teg.mpp_power(c), 1e-15);
}

TEST(TegModel, KFactorIsHalf) { EXPECT_DOUBLE_EQ(TegModel::k_factor(), 0.5); }

TEST(TegModel, ResistanceTempco) {
  TegModel::Params p;
  p.internal_resistance = 10.0;
  p.resistance_tempco = 0.004;
  const TegModel teg(p);
  ThermalConditions hot;
  hot.delta_t = 20.0;
  hot.cold_side_k = 330.0;
  ThermalConditions cold;
  cold.delta_t = 20.0;
  cold.cold_side_k = 280.0;
  EXPECT_GT(teg.internal_resistance(hot), teg.internal_resistance(cold));
}

TEST(TegModel, LibraryInstancesSane) {
  ThermalConditions c;
  c.delta_t = 3.0;
  // Body-worn: a few volts open-circuit even at small dT.
  EXPECT_GT(body_worn_teg().open_circuit_voltage(c), 1.0);
  c.delta_t = 35.0;
  EXPECT_GT(industrial_teg().mpp_power(c), 0.5);  // watts-class
}

TEST(TegController, TrimmedToHalf) {
  const auto ctl = make_teg_controller();
  EXPECT_NEAR(ctl.sample_hold().params().divider_ratio, 0.25, 1e-12);
}

TEST(TegController, TracksTheveninMppNearPerfectly) {
  auto ctl = make_teg_controller();
  const TegModel& teg = body_worn_teg();
  ThermalConditions c;
  c.delta_t = 4.0;
  mppt::SensedInputs s;
  s.time = 0.0;
  s.dt = 1.0;
  s.voc = teg.open_circuit_voltage(c);
  const auto out = ctl.step(s);
  // FOCV with k = 0.5 is exact on a Thevenin source.
  EXPECT_NEAR(out.pv_voltage, teg.mpp_voltage(c), 0.02);
  EXPECT_GT(teg.tracking_efficiency(out.pv_voltage, c), 0.99);
}

TEST(TegHarvest, BodyWornDayNetsPositive) {
  auto ctl = make_teg_controller();
  const ThermalTrace day = body_worn_thermal_day();
  const TegHarvestReport r = harvest_teg(body_worn_teg(), day, ctl);
  EXPECT_GT(r.harvested_energy, 0.0);
  EXPECT_GT(r.tracking_efficiency(), 0.85);  // dead zones below the Voc floor
  EXPECT_GT(r.net_energy(), 0.0);
}

TEST(TegHarvest, IndustrialDayHighEfficiency) {
  auto ctl = make_teg_controller();
  const ThermalTrace day = industrial_thermal_day();
  const TegHarvestReport r = harvest_teg(industrial_teg(), day, ctl);
  EXPECT_GT(r.tracking_efficiency(), 0.95);
  EXPECT_GT(r.net_energy(), 100.0);  // watts-class source, joules galore
}

TEST(TegHarvest, TraceGeneratorsDeterministic) {
  const ThermalTrace a = body_worn_thermal_day(5);
  const ThermalTrace b = body_worn_thermal_day(5);
  ASSERT_EQ(a.delta_t.size(), b.delta_t.size());
  for (std::size_t i = 0; i < a.delta_t.size(); i += 1001) {
    EXPECT_DOUBLE_EQ(a.delta_t[i], b.delta_t[i]);
  }
}

TEST(TegHarvest, RejectsMalformedTrace) {
  auto ctl = make_teg_controller();
  ThermalTrace bad;
  bad.time = {0.0};
  bad.delta_t = {1.0};
  EXPECT_THROW(harvest_teg(body_worn_teg(), bad, ctl), PreconditionError);
}

}  // namespace
}  // namespace focv::teg
