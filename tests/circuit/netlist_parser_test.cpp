// SPICE-style netlist parsing.
#include <cmath>

#include <gtest/gtest.h>

#include "circuit/dc_analysis.hpp"
#include "circuit/netlist_parser.hpp"
#include "circuit/transient.hpp"

namespace focv::circuit {
namespace {

TEST(EngineeringValue, SuffixesAndPlainNumbers) {
  EXPECT_DOUBLE_EQ(parse_engineering_value("10k"), 1e4);
  EXPECT_DOUBLE_EQ(parse_engineering_value("100n"), 1e-7);
  EXPECT_DOUBLE_EQ(parse_engineering_value("2meg"), 2e6);
  EXPECT_DOUBLE_EQ(parse_engineering_value("2MEG"), 2e6);
  EXPECT_DOUBLE_EQ(parse_engineering_value("1.5m"), 1.5e-3);
  EXPECT_DOUBLE_EQ(parse_engineering_value("3u"), 3e-6);
  EXPECT_DOUBLE_EQ(parse_engineering_value("5p"), 5e-12);
  EXPECT_DOUBLE_EQ(parse_engineering_value("7f"), 7e-15);
  EXPECT_DOUBLE_EQ(parse_engineering_value("2g"), 2e9);
  EXPECT_DOUBLE_EQ(parse_engineering_value("1t"), 1e12);
  EXPECT_DOUBLE_EQ(parse_engineering_value("1e-3"), 1e-3);
  EXPECT_DOUBLE_EQ(parse_engineering_value("-4.7"), -4.7);
}

TEST(EngineeringValue, RejectsGarbage) {
  EXPECT_THROW(parse_engineering_value("abc"), NetlistParseError);
  EXPECT_THROW(parse_engineering_value("1x"), NetlistParseError);
  EXPECT_THROW(parse_engineering_value(""), PreconditionError);
}

double solve_node(Circuit& ckt, const std::string& node) {
  const Vector x = dc_operating_point(ckt);
  return x[static_cast<std::size_t>(ckt.find_node(node) - 1)];
}

TEST(NetlistParser, VoltageDivider) {
  Circuit ckt;
  const int n = parse_netlist_string(R"(
* a simple divider
V1 in 0 DC 10
R1 in mid 3k
R2 mid 0 7k
.end
)", ckt);
  EXPECT_EQ(n, 3);
  EXPECT_NEAR(solve_node(ckt, "mid"), 7.0, 1e-6);
}

TEST(NetlistParser, CommentsAndBareDcValue) {
  Circuit ckt;
  parse_netlist_string(
      "V1 a 0 5        ; end-of-line comment\n"
      "// full comment\n"
      "R1 a 0 1k\n",
      ckt);
  EXPECT_NEAR(solve_node(ckt, "a"), 5.0, 1e-6);
}

TEST(NetlistParser, PulseSourceTransient) {
  Circuit ckt;
  parse_netlist_string(R"(
V1 in 0 PULSE(0 2 1m 10u 10u 2m 10m)
R1 in out 1k
C1 out 0 100n
)", ckt);
  TransientOptions opt;
  opt.t_stop = 4e-3;
  const Trace tr = transient_analyze(ckt, opt);
  EXPECT_NEAR(tr.at("out", 2.9e-3), 2.0, 0.05);
}

TEST(NetlistParser, DiodeParamsApply)
{
  Circuit ckt;
  parse_netlist_string(R"(
I1 0 a DC 1m
D1 a 0 IS=1e-12 N=2
)", ckt);
  // V = n*Vt*ln(I/Is) ~ 2*0.02585*ln(1e9) ~ 1.072 V.
  EXPECT_NEAR(solve_node(ckt, "a"), 1.072, 0.01);
}

TEST(NetlistParser, SwitchMosfetControlledSources) {
  Circuit ckt;
  parse_netlist_string(R"(
V1 in 0 DC 5
Vc ctl 0 DC 3.3
S1 in out ctl 0 RON=100 ROFF=1g VT=1.65 VW=0.2
R1 out 0 900
E1 e 0 out 0 2
RL e 0 1k
G1 0 gout out 0 1m
RG gout 0 1k
)", ckt);
  EXPECT_NEAR(solve_node(ckt, "out"), 4.5, 1e-4);
  EXPECT_NEAR(solve_node(ckt, "e"), 9.0, 1e-3);
  EXPECT_NEAR(solve_node(ckt, "gout"), 4.5, 1e-3);
}

TEST(NetlistParser, MosfetCard) {
  Circuit ckt;
  parse_netlist_string(R"(
Vdd vdd 0 DC 10
Vg g 0 DC 2
RD vdd d 4k
M1 d g 0 NMOS VTO=1 KP=2m
)", ckt);
  EXPECT_NEAR(solve_node(ckt, "d"), 6.0, 1e-3);
}

TEST(NetlistParser, AmpBufferCard) {
  Circuit ckt;
  parse_netlist_string(R"(
Vdd vdd 0 DC 3.3
Vin in 0 DC 1.2
U1 in 0 out vdd 0 BUF
RL out 0 1meg
)", ckt);
  EXPECT_NEAR(solve_node(ckt, "out"), 1.2, 5e-3);
}

TEST(NetlistParser, CapacitorInitialCondition) {
  Circuit ckt;
  parse_netlist_string(R"(
C1 a 0 1u IC=3
R1 a 0 1k
)", ckt);
  TransientOptions opt;
  opt.t_stop = 1e-3;
  opt.start_from_dc = false;
  const Trace tr = transient_analyze(ckt, opt);
  EXPECT_NEAR(tr.at("a", 1e-3), 3.0 * std::exp(-1.0), 0.02);
}

TEST(NetlistParser, ErrorsCarryLineNumbers) {
  Circuit ckt;
  try {
    parse_netlist_string("R1 a 0 1k\nX1 bogus card\n", ckt);
    FAIL() << "expected NetlistParseError";
  } catch (const NetlistParseError& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(NetlistParser, RejectsDuplicatesAndShortCards) {
  Circuit ckt;
  EXPECT_THROW(parse_netlist_string("R1 a 0 1k\nR1 b 0 2k\n", ckt), NetlistParseError);
  Circuit ckt2;
  EXPECT_THROW(parse_netlist_string("R1 a 0\n", ckt2), NetlistParseError);
  Circuit ckt3;
  EXPECT_THROW(parse_netlist_string("M1 d g s JFET\n", ckt3), NetlistParseError);
  Circuit ckt4;
  EXPECT_THROW(parse_netlist_string(".tran 1m\n", ckt4), NetlistParseError);
}

TEST(NetlistParser, EndDirectiveStopsParsing) {
  Circuit ckt;
  const int n = parse_netlist_string("R1 a 0 1k\n.end\nR2 b 0 2k\n", ckt);
  EXPECT_EQ(n, 1);
}

}  // namespace
}  // namespace focv::circuit
