#include "circuit/waveform.hpp"

#include <algorithm>

#include <gtest/gtest.h>

#include "common/require.hpp"

namespace focv::circuit {
namespace {

TEST(Waveform, DcIsConstant) {
  const Waveform w = Waveform::dc(3.3);
  EXPECT_DOUBLE_EQ(w.value(0.0), 3.3);
  EXPECT_DOUBLE_EQ(w.value(1e6), 3.3);
  std::vector<double> bp;
  w.collect_breakpoints(0.0, bp);
  EXPECT_TRUE(bp.empty());
}

TEST(Waveform, PulseShape) {
  // 0 -> 5 V, delay 1, rise 0.1, width 2, fall 0.1, period 10.
  const Waveform w = Waveform::pulse(0.0, 5.0, 1.0, 0.1, 0.1, 2.0, 10.0);
  EXPECT_DOUBLE_EQ(w.value(0.5), 0.0);
  EXPECT_NEAR(w.value(1.05), 2.5, 1e-12);  // mid-rise
  EXPECT_DOUBLE_EQ(w.value(2.0), 5.0);     // plateau
  EXPECT_NEAR(w.value(3.15), 2.5, 1e-12);  // mid-fall
  EXPECT_DOUBLE_EQ(w.value(5.0), 0.0);     // low
  EXPECT_DOUBLE_EQ(w.value(12.0), 5.0);    // next period plateau
}

TEST(Waveform, PulseZeroEdgeGetsFiniteRamp) {
  const Waveform w = Waveform::pulse(0.0, 1.0, 0.0, 0.0, 0.0, 1.0, 0.0);
  // Just after the (sharpened) edge the value is 1.
  EXPECT_DOUBLE_EQ(w.value(0.5), 1.0);
}

TEST(Waveform, PulseBreakpointsCoverEdges) {
  const Waveform w = Waveform::pulse(0.0, 5.0, 1.0, 0.1, 0.1, 2.0, 10.0);
  std::vector<double> bp;
  w.collect_breakpoints(0.0, bp);
  // Must include the first rising edge corner times.
  EXPECT_NE(std::find_if(bp.begin(), bp.end(),
                         [](double t) { return std::abs(t - 1.0) < 1e-12; }),
            bp.end());
  EXPECT_NE(std::find_if(bp.begin(), bp.end(),
                         [](double t) { return std::abs(t - 3.1) < 1e-12; }),
            bp.end());
  // From within a later period, breakpoints must be in the future.
  bp.clear();
  w.collect_breakpoints(25.0, bp);
  for (const double t : bp) EXPECT_GT(t, 25.0);
  EXPECT_FALSE(bp.empty());
}

TEST(Waveform, PulseRejectsBadTiming) {
  EXPECT_THROW(Waveform::pulse(0, 1, 0, -0.1, 0, 1, 0), PreconditionError);
  EXPECT_THROW(Waveform::pulse(0, 1, 0, 0.5, 0.5, 2.0, 1.0), PreconditionError);
}

TEST(Waveform, SineValues) {
  const Waveform w = Waveform::sine(1.0, 2.0, 50.0);
  EXPECT_DOUBLE_EQ(w.value(0.0), 1.0);
  EXPECT_NEAR(w.value(0.005), 3.0, 1e-9);   // quarter period
  EXPECT_NEAR(w.value(0.015), -1.0, 1e-9);  // three quarters
  EXPECT_THROW(Waveform::sine(0, 1, 0.0), PreconditionError);
}

TEST(Waveform, PwlInterpolatesAndHolds) {
  const Waveform w = Waveform::pwl({{0.0, 0.0}, {1.0, 10.0}, {3.0, 10.0}, {4.0, 0.0}});
  EXPECT_DOUBLE_EQ(w.value(0.5), 5.0);
  EXPECT_DOUBLE_EQ(w.value(2.0), 10.0);
  EXPECT_DOUBLE_EQ(w.value(100.0), 0.0);  // holds last value
  EXPECT_DOUBLE_EQ(w.value(-5.0), 0.0);   // holds first value
}

TEST(Waveform, PwlRepeats) {
  const Waveform w = Waveform::pwl({{0.0, 0.0}, {1.0, 1.0}}, 2.0);
  EXPECT_NEAR(w.value(2.5), 0.5, 1e-12);
}

TEST(Waveform, PwlRejectsNonIncreasing) {
  EXPECT_THROW(Waveform::pwl({{1.0, 0.0}, {1.0, 1.0}}), PreconditionError);
  EXPECT_THROW(Waveform::pwl({}), PreconditionError);
}

TEST(Waveform, PwlBreakpoints) {
  const Waveform w = Waveform::pwl({{0.0, 0.0}, {1.0, 1.0}, {2.0, 0.0}});
  std::vector<double> bp;
  w.collect_breakpoints(0.5, bp);
  EXPECT_NE(std::find(bp.begin(), bp.end(), 1.0), bp.end());
  EXPECT_NE(std::find(bp.begin(), bp.end(), 2.0), bp.end());
}

}  // namespace
}  // namespace focv::circuit
