// Device-level checks through minimal DC circuits plus direct model maths.
#include <cmath>

#include <gtest/gtest.h>

#include "circuit/dc_analysis.hpp"
#include "circuit/devices_active.hpp"
#include "circuit/devices_passive.hpp"
#include "circuit/devices_sources.hpp"
#include "common/require.hpp"

namespace focv::circuit {
namespace {

double node_v(const Circuit& ckt, const Vector& x, const std::string& name) {
  const NodeId n = ckt.find_node(name);
  return x[static_cast<std::size_t>(n - 1)];
}

TEST(ResistorDevice, VoltageDividerDc) {
  Circuit ckt;
  const NodeId in = ckt.node("in");
  const NodeId mid = ckt.node("mid");
  ckt.add<VoltageSource>("V1", in, kGround, Waveform::dc(10.0));
  ckt.add<Resistor>("R1", in, mid, 3e3);
  ckt.add<Resistor>("R2", mid, kGround, 7e3);
  const Vector x = dc_operating_point(ckt);
  EXPECT_NEAR(node_v(ckt, x, "mid"), 7.0, 1e-6);
}

TEST(ResistorDevice, RejectsNonPositive) {
  Circuit ckt;
  EXPECT_THROW(ckt.add<Resistor>("R", ckt.node("a"), kGround, 0.0), PreconditionError);
  EXPECT_THROW(ckt.add<Resistor>("R", ckt.node("a"), kGround, -5.0), PreconditionError);
}

TEST(VoltageSourceDevice, BranchCurrentConvention) {
  // 5 V across 5 Ohm: 1 A delivered; branch current (into + terminal)
  // must be -1 A (SPICE convention).
  Circuit ckt;
  const NodeId a = ckt.node("a");
  auto& vs = ckt.add<VoltageSource>("V1", a, kGround, Waveform::dc(5.0));
  ckt.add<Resistor>("R1", a, kGround, 5.0);
  const Vector x = dc_operating_point(ckt);
  const Solution s(x, ckt.node_count(), 0.0);
  EXPECT_NEAR(vs.current(s), -1.0, 1e-9);
}

TEST(CurrentSourceDevice, DrivesExpectedNodeVoltage) {
  // 1 mA from ground into node through the source (a=gnd, b=node),
  // node loaded with 1 kOhm: +1 V.
  Circuit ckt;
  const NodeId n = ckt.node("n");
  ckt.add<CurrentSource>("I1", kGround, n, Waveform::dc(1e-3));
  ckt.add<Resistor>("R1", n, kGround, 1e3);
  const Vector x = dc_operating_point(ckt);
  EXPECT_NEAR(node_v(ckt, x, "n"), 1.0, 1e-9);
}

TEST(DiodeDevice, ForwardDropAtKnownCurrent) {
  // 1 mA through a diode with Is = 1e-14, n = 1: V = n*Vt*ln(I/Is).
  Circuit ckt;
  const NodeId a = ckt.node("a");
  ckt.add<CurrentSource>("I1", kGround, a, Waveform::dc(1e-3));
  Diode::Params dp;
  dp.saturation_current = 1e-14;
  ckt.add<Diode>("D1", a, kGround, dp);
  const Vector x = dc_operating_point(ckt);
  const double expected = dp.thermal_voltage * std::log(1e-3 / 1e-14);
  EXPECT_NEAR(node_v(ckt, x, "a"), expected, 1e-3);
}

TEST(DiodeDevice, BlocksReverse) {
  Circuit ckt;
  const NodeId a = ckt.node("a");
  const NodeId b = ckt.node("b");
  ckt.add<VoltageSource>("V1", a, kGround, Waveform::dc(-5.0));
  ckt.add<Resistor>("R1", a, b, 1e3);
  ckt.add<Diode>("D1", b, kGround);
  const Vector x = dc_operating_point(ckt);
  // Reverse leakage only: node b sits essentially at the source voltage.
  EXPECT_NEAR(node_v(ckt, x, "b"), -5.0, 0.01);
}

TEST(DiodeDevice, CurrentAtMatchesShockley) {
  Diode::Params dp;
  dp.saturation_current = 1e-12;
  dp.emission_coefficient = 2.0;
  Circuit ckt;
  auto& d = ckt.add<Diode>("D", ckt.node("a"), kGround, dp);
  const double v = 0.5;
  const double expected = 1e-12 * (std::exp(v / (2.0 * dp.thermal_voltage)) - 1.0) +
                          dp.parallel_gmin * v;
  EXPECT_NEAR(d.current_at(v), expected, expected * 1e-12);
}

TEST(VSwitchDevice, ConductanceEndsAndMidpoint) {
  Circuit ckt;
  VSwitch::Params p;
  p.on_resistance = 100.0;
  p.off_resistance = 1e9;
  p.threshold = 1.0;
  p.transition_width = 0.2;
  auto& sw = ckt.add<VSwitch>("S", ckt.node("a"), ckt.node("b"), ckt.node("c"), kGround, p);
  EXPECT_NEAR(sw.conductance_at(0.0), 1e-9, 1e-12);
  EXPECT_NEAR(sw.conductance_at(2.0), 1e-2, 1e-9);
  // Midpoint: geometric mean in the log-interpolated model.
  EXPECT_NEAR(sw.conductance_at(1.0), std::sqrt(1e-9 * 1e-2), 1e-8);
}

TEST(VSwitchDevice, ActiveLowInverts) {
  Circuit ckt;
  VSwitch::Params p;
  p.active_high = false;
  p.threshold = 1.0;
  p.transition_width = 0.2;
  auto& sw = ckt.add<VSwitch>("S", ckt.node("a"), ckt.node("b"), ckt.node("c"), kGround, p);
  EXPECT_GT(sw.conductance_at(0.0), sw.conductance_at(2.0));
}

TEST(VSwitchDevice, DcSeriesDrop) {
  Circuit ckt;
  const NodeId in = ckt.node("in");
  const NodeId out = ckt.node("out");
  const NodeId ctl = ckt.node("ctl");
  ckt.add<VoltageSource>("V1", in, kGround, Waveform::dc(5.0));
  ckt.add<VoltageSource>("Vc", ctl, kGround, Waveform::dc(3.3));
  VSwitch::Params p;
  p.on_resistance = 100.0;
  p.threshold = 1.65;
  ckt.add<VSwitch>("S", in, out, ctl, kGround, p);
  ckt.add<Resistor>("RL", out, kGround, 900.0);
  const Vector x = dc_operating_point(ckt);
  EXPECT_NEAR(node_v(ckt, x, "out"), 4.5, 1e-6);
}

TEST(MosfetDevice, RegionsOfOperation) {
  Circuit ckt;
  Mosfet::Params p;
  p.threshold_voltage = 1.0;
  p.transconductance = 2e-3;
  auto& m = ckt.add<Mosfet>("M", ckt.node("d"), ckt.node("g"), ckt.node("s"), p);
  EXPECT_DOUBLE_EQ(m.drain_current(0.5, 5.0), 0.0);                 // cutoff
  EXPECT_NEAR(m.drain_current(2.0, 0.5), 2e-3 * (1.0 - 0.25) * 0.5, 1e-12);  // triode
  EXPECT_NEAR(m.drain_current(2.0, 5.0), 0.5 * 2e-3 * 1.0, 1e-12);  // saturation
}

TEST(MosfetDevice, SymmetricInDrainSource) {
  Circuit ckt;
  auto& m = ckt.add<Mosfet>("M", ckt.node("d"), ckt.node("g"), ckt.node("s"));
  // Swapping drain/source negates the current. With terminals exchanged
  // the gate-source voltage becomes gate-drain: vgs' = vgs - vds.
  const double forward = m.drain_current(2.0, 1.5);
  const double reverse = m.drain_current(2.0 - 1.5, -1.5);
  EXPECT_NEAR(forward, -reverse, 1e-15);
}

TEST(MosfetDevice, PmosMirrorsNmos) {
  Circuit ckt;
  Mosfet::Params np;
  np.is_nmos = true;
  Mosfet::Params pp = np;
  pp.is_nmos = false;
  auto& mn = ckt.add<Mosfet>("Mn", ckt.node("d1"), ckt.node("g1"), ckt.node("s1"), np);
  auto& mp = ckt.add<Mosfet>("Mp", ckt.node("d2"), ckt.node("g2"), ckt.node("s2"), pp);
  EXPECT_NEAR(mn.drain_current(2.0, 3.0), -mp.drain_current(-2.0, -3.0), 1e-15);
}

TEST(MosfetDevice, DcCommonSourceAmp) {
  // NMOS with gate at 2 V, Vth 1 V, K 2e-3 -> Id = 1 mA in saturation.
  Circuit ckt;
  const NodeId vdd = ckt.node("vdd");
  const NodeId d = ckt.node("d");
  const NodeId g = ckt.node("g");
  ckt.add<VoltageSource>("Vdd", vdd, kGround, Waveform::dc(10.0));
  ckt.add<VoltageSource>("Vg", g, kGround, Waveform::dc(2.0));
  ckt.add<Resistor>("RD", vdd, d, 4e3);
  ckt.add<Mosfet>("M", d, g, kGround, Mosfet::Params{.threshold_voltage = 1.0,
                                                     .transconductance = 2e-3});
  const Vector x = dc_operating_point(ckt);
  EXPECT_NEAR(node_v(ckt, x, "d"), 10.0 - 4e3 * 1e-3, 1e-5);
}

TEST(VccsDevice, TransconductanceDc) {
  Circuit ckt;
  const NodeId c = ckt.node("c");
  const NodeId o = ckt.node("o");
  ckt.add<VoltageSource>("Vc", c, kGround, Waveform::dc(2.0));
  // i(gnd->o) = gm * v(c): with gm 1e-3 and RL 1k, out = -? current a->b.
  ckt.add<Vccs>("G1", o, kGround, c, kGround, 1e-3);
  ckt.add<Resistor>("RL", o, kGround, 1e3);
  const Vector x = dc_operating_point(ckt);
  // Current 2 mA flows o -> gnd through the source, pulling o negative.
  EXPECT_NEAR(node_v(ckt, x, "o"), -2.0, 1e-6);
}

TEST(VcvsDevice, GainDc) {
  Circuit ckt;
  const NodeId c = ckt.node("c");
  const NodeId o = ckt.node("o");
  ckt.add<VoltageSource>("Vc", c, kGround, Waveform::dc(0.25));
  ckt.add<Vcvs>("E1", o, kGround, c, kGround, 8.0);
  ckt.add<Resistor>("RL", o, kGround, 1e3);
  const Vector x = dc_operating_point(ckt);
  EXPECT_NEAR(node_v(ckt, x, "o"), 2.0, 1e-9);
}

TEST(AmpDevice, ComparatorSaturatesBothWays) {
  Circuit ckt;
  auto& amp = ckt.add<Amp>("U", ckt.node("p"), ckt.node("n"), ckt.node("o"),
                           Amp::Params{.mode = Amp::Mode::kComparator,
                                       .gain = 1e4,
                                       .rail_low = 0.0,
                                       .rail_high = 3.3});
  EXPECT_NEAR(amp.transfer(0.1, 0.0, 3.3), 3.3, 1e-6);
  EXPECT_NEAR(amp.transfer(-0.1, 0.0, 3.3), 0.0, 1e-6);
  EXPECT_NEAR(amp.transfer(0.0, 0.0, 3.3), 1.65, 1e-9);
}

TEST(AmpDevice, ComparatorGainAtThreshold) {
  Circuit ckt;
  auto& amp = ckt.add<Amp>("U", ckt.node("p"), ckt.node("n"), ckt.node("o"),
                           Amp::Params{.mode = Amp::Mode::kComparator, .gain = 1e4});
  const double dv = 1e-8;
  const double slope = (amp.transfer(dv, 0.0, 3.3) - amp.transfer(-dv, 0.0, 3.3)) / (2.0 * dv);
  EXPECT_NEAR(slope, 1e4, 20.0);
}

TEST(AmpDevice, BufferFollowsInputWithinRails) {
  Circuit ckt;
  const NodeId in = ckt.node("in");
  const NodeId out = ckt.node("out");
  const NodeId vdd = ckt.node("vdd");
  ckt.add<VoltageSource>("Vdd", vdd, kGround, Waveform::dc(3.3));
  ckt.add<VoltageSource>("Vin", in, kGround, Waveform::dc(1.234));
  ckt.add<Amp>("U", in, kGround, out, vdd, kGround,
               Amp::Params{.mode = Amp::Mode::kBuffer, .output_resistance = 100.0});
  ckt.add<Resistor>("RL", out, kGround, 1e6);
  const Vector x = dc_operating_point(ckt);
  EXPECT_NEAR(node_v(ckt, x, "out"), 1.234, 1e-3);
}

TEST(AmpDevice, BufferClampsAtRails) {
  Circuit ckt;
  const NodeId in = ckt.node("in");
  const NodeId out = ckt.node("out");
  ckt.add<VoltageSource>("Vin", in, kGround, Waveform::dc(9.0));
  ckt.add<Amp>("U", in, kGround, out,
               Amp::Params{.mode = Amp::Mode::kBuffer, .rail_high = 3.3});
  ckt.add<Resistor>("RL", out, kGround, 1e6);
  const Vector x = dc_operating_point(ckt);
  EXPECT_NEAR(node_v(ckt, x, "out"), 3.3, 0.05);
}

TEST(AmpDevice, QuiescentCurrentFlowsVddToVss) {
  Circuit ckt;
  const NodeId vdd = ckt.node("vdd");
  auto& vs = ckt.add<VoltageSource>("Vdd", vdd, kGround, Waveform::dc(3.3));
  ckt.add<Amp>("U", ckt.node("p"), ckt.node("n"), ckt.node("o"), vdd, kGround,
               Amp::Params{.mode = Amp::Mode::kComparator, .quiescent_current = 0.7e-6});
  ckt.add<Resistor>("Rl", ckt.node("o"), kGround, 1e9);
  const Vector x = dc_operating_point(ckt);
  const Solution s(x, ckt.node_count(), 0.0);
  // Supply delivers at least the quiescent current.
  EXPECT_LT(vs.current(s), -0.6e-6);
}

}  // namespace
}  // namespace focv::circuit
