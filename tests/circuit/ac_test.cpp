// AC small-signal analysis against closed-form frequency responses.
#include <cmath>
#include <numbers>

#include <gtest/gtest.h>

#include "circuit/ac_analysis.hpp"
#include "circuit/devices_active.hpp"
#include "circuit/devices_passive.hpp"
#include "circuit/devices_sources.hpp"
#include "common/require.hpp"

namespace focv::circuit {
namespace {

TEST(AcAnalysis, RcLowPassCornerAndRolloff) {
  // R = 1 kOhm, C = 1 uF: corner at 1/(2 pi R C) ~ 159.2 Hz.
  Circuit ckt;
  const NodeId in = ckt.node("in");
  const NodeId out = ckt.node("out");
  ckt.add<VoltageSource>("Vs", in, kGround, Waveform::dc(0.0));
  ckt.add<Resistor>("R", in, out, 1e3);
  ckt.add<Capacitor>("C", out, kGround, 1e-6);
  AcOptions opt;
  opt.f_start = 1.0;
  opt.f_stop = 1e5;
  opt.points_per_decade = 20;
  opt.stimulus = "Vs";
  const AcSweep sweep = ac_analyze(ckt, opt);
  EXPECT_NEAR(sweep.corner_frequency("out"), 159.15, 159.15 * 0.05);
  // One decade above the corner: -20 dB/decade slope.
  const auto mag = sweep.magnitude_db("out");
  const auto& f = sweep.frequency();
  double m_1k = 0.0, m_10k = 0.0;
  for (std::size_t i = 0; i < f.size(); ++i) {
    if (std::abs(f[i] - 1e3) / 1e3 < 0.1) m_1k = mag[i];
    if (std::abs(f[i] - 1e4) / 1e4 < 0.1) m_10k = mag[i];
  }
  EXPECT_NEAR(m_1k - m_10k, 20.0, 1.5);
  // Phase heads to -90 degrees.
  EXPECT_NEAR(sweep.phase_deg("out").back(), -90.0, 3.0);
}

TEST(AcAnalysis, ResistiveDividerIsFlat) {
  Circuit ckt;
  const NodeId in = ckt.node("in");
  const NodeId mid = ckt.node("mid");
  ckt.add<VoltageSource>("Vs", in, kGround, Waveform::dc(1.0));
  ckt.add<Resistor>("R1", in, mid, 2e3);
  ckt.add<Resistor>("R2", mid, kGround, 2e3);
  AcOptions opt;
  opt.stimulus = "Vs";
  const AcSweep sweep = ac_analyze(ckt, opt);
  for (const double m : sweep.magnitude_db("mid")) EXPECT_NEAR(m, -6.02, 0.1);
  EXPECT_DOUBLE_EQ(sweep.corner_frequency("mid"), -1.0);
}

TEST(AcAnalysis, SeriesRlcResonance) {
  // R = 10, L = 1 mH, C = 1 uF: f0 = 1/(2 pi sqrt(LC)) ~ 5.03 kHz.
  // At resonance the capacitor voltage peaks at Q = sqrt(L/C)/R ~ 3.16x.
  Circuit ckt;
  const NodeId in = ckt.node("in");
  const NodeId a = ckt.node("a");
  const NodeId out = ckt.node("out");
  ckt.add<VoltageSource>("Vs", in, kGround, Waveform::dc(0.0));
  ckt.add<Resistor>("R", in, a, 10.0);
  ckt.add<Inductor>("L", a, out, 1e-3);
  ckt.add<Capacitor>("C", out, kGround, 1e-6);
  AcOptions opt;
  opt.f_start = 100.0;
  opt.f_stop = 1e6;
  opt.points_per_decade = 60;
  opt.stimulus = "Vs";
  const AcSweep sweep = ac_analyze(ckt, opt);
  const auto mag = sweep.magnitude_db("out");
  const auto& f = sweep.frequency();
  std::size_t peak = 0;
  for (std::size_t i = 1; i < mag.size(); ++i) {
    if (mag[i] > mag[peak]) peak = i;
  }
  const double f0 = 1.0 / (2.0 * std::numbers::pi * std::sqrt(1e-3 * 1e-6));
  EXPECT_NEAR(f[peak], f0, f0 * 0.05);
  const double q_db = 20.0 * std::log10(std::sqrt(1e-3 / 1e-6) / 10.0);
  EXPECT_NEAR(mag[peak], q_db, 0.5);
}

TEST(AcAnalysis, LinearisesNonlinearDeviceAtOperatingPoint) {
  // Diode biased at 1 mA has small-signal resistance n*Vt/I ~ 25.85 Ohm;
  // with a series 1 kOhm the AC division follows that resistance.
  Circuit ckt;
  const NodeId in = ckt.node("in");
  const NodeId d = ckt.node("d");
  ckt.add<VoltageSource>("Vs", in, kGround, Waveform::dc(5.0));
  ckt.add<Resistor>("R", in, d, 1e3);
  Diode::Params dp;
  dp.saturation_current = 1e-14;
  ckt.add<Diode>("D", d, kGround, dp);
  AcOptions opt;
  opt.stimulus = "Vs";
  opt.f_stop = 10.0;
  opt.points_per_decade = 2;
  const AcSweep sweep = ac_analyze(ckt, opt);
  // DC current ~ (5 - 0.72) / 1k ~ 4.28 mA -> rd ~ 6.0 Ohm.
  const double mag = std::abs(sweep.response("d").front());
  EXPECT_GT(mag, 0.002);
  EXPECT_LT(mag, 0.02);
}

TEST(AcAnalysis, CurrentSourceStimulusMeasuresImpedance) {
  // 1 A AC into R || C: |Z| at DC-ish is R, rolls off past the corner.
  Circuit ckt;
  const NodeId n1 = ckt.node("n1");
  ckt.add<CurrentSource>("Is", kGround, n1, Waveform::dc(1e-3));
  ckt.add<Resistor>("R", n1, kGround, 5e3);
  ckt.add<Capacitor>("C", n1, kGround, 1e-7);
  AcOptions opt;
  opt.stimulus = "Is";
  opt.f_start = 1.0;
  opt.f_stop = 1e6;
  const AcSweep sweep = ac_analyze(ckt, opt);
  EXPECT_NEAR(std::abs(sweep.response("n1").front()), 5e3, 50.0);
  const double fc = 1.0 / (2.0 * std::numbers::pi * 5e3 * 1e-7);
  EXPECT_NEAR(sweep.corner_frequency("n1"), fc, fc * 0.06);
}

TEST(AcAnalysis, RejectsUnknownStimulus) {
  Circuit ckt;
  ckt.add<Resistor>("R", ckt.node("a"), kGround, 1.0);
  AcOptions opt;
  opt.stimulus = "nope";
  EXPECT_THROW(ac_analyze(ckt, opt), PreconditionError);
}

TEST(AcAnalysis, RejectsBadRange) {
  Circuit ckt;
  ckt.add<VoltageSource>("Vs", ckt.node("a"), kGround, Waveform::dc(1.0));
  ckt.add<Resistor>("R", ckt.node("a"), kGround, 1.0);
  AcOptions opt;
  opt.stimulus = "Vs";
  opt.f_start = 10.0;
  opt.f_stop = 1.0;
  EXPECT_THROW(ac_analyze(ckt, opt), PreconditionError);
}

}  // namespace
}  // namespace focv::circuit
