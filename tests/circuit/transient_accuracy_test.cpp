// Parameterized accuracy sweeps of the transient integrator.
#include <cmath>

#include <gtest/gtest.h>

#include "circuit/devices_active.hpp"
#include "circuit/devices_passive.hpp"
#include "circuit/devices_sources.hpp"
#include "circuit/transient.hpp"

namespace focv::circuit {
namespace {

struct RcCase {
  double r;
  double c;
};

class RcAccuracyTest : public ::testing::TestWithParam<RcCase> {};

TEST_P(RcAccuracyTest, StepResponseWithinOnePercent) {
  const auto [r, cap] = GetParam();
  const double tau = r * cap;
  Circuit ckt;
  const NodeId in = ckt.node("in");
  const NodeId out = ckt.node("out");
  ckt.add<VoltageSource>("V", in, kGround, Waveform::dc(1.0));
  ckt.add<Resistor>("R", in, out, r);
  ckt.add<Capacitor>("C", out, kGround, cap);
  TransientOptions opt;
  opt.t_stop = 5.0 * tau;
  opt.start_from_dc = false;
  opt.dt_initial = tau * 1e-4;
  opt.dv_step_max = 0.02;
  const Trace tr = transient_analyze(ckt, opt);
  for (const double frac : {0.5, 1.0, 2.0, 4.0}) {
    const double t = frac * tau;
    const double expected = 1.0 - std::exp(-frac);
    EXPECT_NEAR(tr.at("out", t), expected, 0.01) << "tau=" << tau << " frac=" << frac;
  }
}

INSTANTIATE_TEST_SUITE_P(
    TimeConstants, RcAccuracyTest,
    ::testing::Values(RcCase{1e2, 1e-9}, RcCase{1e3, 1e-6}, RcCase{1e6, 1e-6},
                      RcCase{1e7, 1e-4},   // the astable's 69 s class
                      RcCase{56.3e3, 1e-6}));

TEST(IntegratorComparison, TrapezoidalPreservesLcAmplitudeBetterThanBe) {
  auto run = [](Integrator method) {
    Circuit ckt;
    const NodeId a = ckt.node("a");
    ckt.add<Capacitor>("C", a, kGround, 1e-6, 1.0);
    ckt.add<Inductor>("L", a, kGround, 1e-3);
    TransientOptions opt;
    opt.t_stop = 2e-3;  // ~10 cycles
    opt.start_from_dc = false;
    opt.dt_initial = 1e-7;
    opt.dt_max = 1e-6;
    opt.dv_step_max = 0.2;
    opt.integrator = method;
    const Trace tr = transient_analyze(ckt, opt);
    return tr.maximum("a", 1.8e-3, 2e-3);
  };
  const double amp_trap = run(Integrator::kTrapezoidal);
  const double amp_be = run(Integrator::kBackwardEuler);
  EXPECT_GT(amp_trap, 0.97);          // near-lossless
  EXPECT_LT(amp_be, amp_trap - 0.02); // BE numerically damps
}

TEST(StepControl, TighterDvLimitReducesError) {
  auto error_at_tau = [](double dv_max) {
    Circuit ckt;
    const NodeId in = ckt.node("in");
    const NodeId out = ckt.node("out");
    ckt.add<VoltageSource>("V", in, kGround, Waveform::dc(1.0));
    ckt.add<Resistor>("R", in, out, 1e3);
    ckt.add<Capacitor>("C", out, kGround, 1e-6);
    TransientOptions opt;
    opt.t_stop = 2e-3;
    opt.start_from_dc = false;
    opt.dt_initial = 1e-7;
    opt.dv_step_max = dv_max;
    const Trace tr = transient_analyze(ckt, opt);
    return std::abs(tr.at("out", 1e-3) - (1.0 - std::exp(-1.0)));
  };
  EXPECT_LE(error_at_tau(0.01), error_at_tau(0.3) + 1e-12);
}

TEST(Breakpoints, NarrowPulseIsNotSteppedOver) {
  // A 10 us pulse inside a 10 ms window: without breakpoint handling an
  // adaptive stepper in a quiet circuit would jump straight across it.
  Circuit ckt;
  const NodeId in = ckt.node("in");
  const NodeId out = ckt.node("out");
  ckt.add<VoltageSource>("V", in, kGround,
                         Waveform::pulse(0.0, 1.0, 5e-3, 1e-7, 1e-7, 10e-6, 0.0));
  ckt.add<Resistor>("R", in, out, 1e3);
  ckt.add<Capacitor>("C", out, kGround, 1e-9);  // tau = 1 us << pulse
  TransientOptions opt;
  opt.t_stop = 10e-3;
  opt.dt_initial = 1e-6;
  const Trace tr = transient_analyze(ckt, opt);
  EXPECT_GT(tr.maximum("out", 5e-3, 5.02e-3), 0.9);
}

TEST(StepControl, EventLimitLocalisesComparatorFlip) {
  // A slow ramp through a fixed-rail comparator threshold: the output
  // flip must land within the configured event resolution even though
  // the ramp itself allows huge steps.
  Circuit ckt;
  const NodeId in = ckt.node("in");
  const NodeId out = ckt.node("out");
  ckt.add<VoltageSource>("V", in, kGround,
                         Waveform::pwl({{0.0, 0.0}, {100.0, 2.0}}));
  Amp::Params cp;
  cp.mode = Amp::Mode::kComparator;
  cp.gain = 1e4;
  cp.offset_voltage = -1.0;  // flips when the ramp passes 1 V, i.e. t = 50 s
  auto& comp = ckt.add<Amp>("U", in, kGround, out, cp);
  comp.set_transition_dt_limit(0.01);
  ckt.add<Resistor>("RL", out, kGround, 1e6);
  TransientOptions opt;
  opt.t_stop = 100.0;
  opt.dt_initial = 1e-3;
  opt.dt_max = 10.0;
  opt.dv_step_max = 0.5;
  const Trace tr = transient_analyze(ckt, opt);
  const auto crossings = tr.crossing_times("out", 1.65, true);
  ASSERT_EQ(crossings.size(), 1u);
  EXPECT_NEAR(crossings[0], 50.0, 0.2);
}

}  // namespace
}  // namespace focv::circuit
