// Transient analysis against closed-form circuit responses.
#include <cmath>
#include <numbers>

#include <gtest/gtest.h>

#include "circuit/devices_active.hpp"
#include "circuit/devices_passive.hpp"
#include "circuit/devices_sources.hpp"
#include "circuit/transient.hpp"
#include "common/require.hpp"

namespace focv::circuit {
namespace {

TEST(Transient, RcChargeMatchesAnalytic) {
  // 5 V step into R = 1k, C = 1uF: v(t) = 5 (1 - exp(-t/tau)), tau = 1 ms.
  Circuit ckt;
  const NodeId in = ckt.node("in");
  const NodeId out = ckt.node("out");
  ckt.add<VoltageSource>("V", in, kGround, Waveform::dc(5.0));
  ckt.add<Resistor>("R", in, out, 1e3);
  ckt.add<Capacitor>("C", out, kGround, 1e-6);
  TransientOptions opt;
  opt.t_stop = 5e-3;
  opt.start_from_dc = false;  // cap starts discharged
  opt.dt_initial = 1e-7;
  opt.dv_step_max = 0.05;
  const Trace tr = transient_analyze(ckt, opt);
  for (const double t : {0.5e-3, 1e-3, 2e-3, 4e-3}) {
    const double expected = 5.0 * (1.0 - std::exp(-t / 1e-3));
    EXPECT_NEAR(tr.at("out", t), expected, 0.02) << "t=" << t;
  }
}

TEST(Transient, RcDischargeFromInitialCondition) {
  Circuit ckt;
  const NodeId a = ckt.node("a");
  ckt.add<Capacitor>("C", a, kGround, 1e-6, 3.0);  // IC: 3 V
  ckt.add<Resistor>("R", a, kGround, 1e3);
  TransientOptions opt;
  opt.t_stop = 3e-3;
  opt.start_from_dc = false;
  opt.dt_initial = 1e-7;
  opt.dv_step_max = 0.05;
  const Trace tr = transient_analyze(ckt, opt);
  EXPECT_NEAR(tr.at("a", 1e-3), 3.0 * std::exp(-1.0), 0.02);
  EXPECT_NEAR(tr.at("a", 2e-3), 3.0 * std::exp(-2.0), 0.02);
}

TEST(Transient, LcOscillatorFrequencyAndAmplitude) {
  // L = 1 mH, C = 1 uF, cap IC 1 V: f = 1/(2*pi*sqrt(LC)) ~ 5.03 kHz.
  Circuit ckt;
  const NodeId a = ckt.node("a");
  ckt.add<Capacitor>("C", a, kGround, 1e-6, 1.0);
  ckt.add<Inductor>("L", a, kGround, 1e-3);
  TransientOptions opt;
  opt.t_stop = 1e-3;
  opt.start_from_dc = false;
  opt.dt_initial = 1e-8;
  opt.dt_max = 2e-6;
  opt.dv_step_max = 0.05;
  const Trace tr = transient_analyze(ckt, opt);
  const auto zeros = tr.crossing_times("a", 0.0, false);
  ASSERT_GE(zeros.size(), 2u);
  const double period_half = zeros[1] - zeros[0];
  const double f = 1.0 / (2.0 * std::numbers::pi * std::sqrt(1e-3 * 1e-6));
  EXPECT_NEAR(1.0 / period_half, f, f * 0.02);
  // Trapezoidal integration preserves the oscillation amplitude well.
  EXPECT_GT(tr.maximum("a", 0.8e-3, 1e-3), 0.9);
}

TEST(Transient, PulseDrivesRcAndBreakpointsAreHit) {
  Circuit ckt;
  const NodeId in = ckt.node("in");
  const NodeId out = ckt.node("out");
  ckt.add<VoltageSource>("V", in, kGround,
                         Waveform::pulse(0.0, 2.0, 1e-3, 1e-5, 1e-5, 2e-3, 0.0));
  ckt.add<Resistor>("R", in, out, 1e3);
  ckt.add<Capacitor>("C", out, kGround, 1e-7);
  TransientOptions opt;
  opt.t_stop = 6e-3;
  opt.dt_initial = 1e-6;
  const Trace tr = transient_analyze(ckt, opt);
  EXPECT_NEAR(tr.at("out", 0.9e-3), 0.0, 1e-3);
  EXPECT_NEAR(tr.at("out", 2.9e-3), 2.0, 0.02);   // fully charged
  EXPECT_NEAR(tr.at("out", 5.9e-3), 0.0, 0.02);   // discharged after pulse
}

TEST(Transient, StartFromDcUsesOperatingPoint) {
  // Divider with a cap: from DC there must be no initial transient.
  Circuit ckt;
  const NodeId in = ckt.node("in");
  const NodeId mid = ckt.node("mid");
  ckt.add<VoltageSource>("V", in, kGround, Waveform::dc(4.0));
  ckt.add<Resistor>("R1", in, mid, 1e3);
  ckt.add<Resistor>("R2", mid, kGround, 1e3);
  ckt.add<Capacitor>("C", mid, kGround, 1e-6);
  TransientOptions opt;
  opt.t_stop = 1e-3;
  const Trace tr = transient_analyze(ckt, opt);
  EXPECT_NEAR(tr.minimum("mid", 0.0, 1e-3), 2.0, 1e-5);
  EXPECT_NEAR(tr.maximum("mid", 0.0, 1e-3), 2.0, 1e-5);
}

TEST(Transient, EnergyConservationRcDischarge) {
  // Energy dumped in the resistor equals the capacitor's initial energy.
  Circuit ckt;
  const NodeId a = ckt.node("a");
  ckt.add<Capacitor>("C", a, kGround, 1e-6, 2.0);
  ckt.add<Resistor>("R", a, kGround, 1e3);
  TransientOptions opt;
  opt.t_stop = 10e-3;  // 10 tau
  opt.start_from_dc = false;
  opt.dt_initial = 1e-7;
  opt.dv_step_max = 0.02;
  const Trace tr = transient_analyze(ckt, opt);
  // Integrate v^2/R over the trace.
  const auto& t = tr.time();
  const auto& v = tr.signal("a");
  double energy = 0.0;
  for (std::size_t i = 1; i < t.size(); ++i) {
    const double vm = 0.5 * (v[i] + v[i - 1]);
    energy += vm * vm / 1e3 * (t[i] - t[i - 1]);
  }
  EXPECT_NEAR(energy, 0.5 * 1e-6 * 4.0, 0.5 * 1e-6 * 4.0 * 0.02);
}

TEST(Transient, RecordStrideThinsOutput) {
  Circuit ckt;
  const NodeId a = ckt.node("a");
  ckt.add<VoltageSource>("V", a, kGround, Waveform::sine(0.0, 1.0, 1e3));
  ckt.add<Resistor>("R", a, kGround, 1e3);
  TransientOptions opt;
  opt.t_stop = 2e-3;
  opt.record_stride = 1;
  const std::size_t full = transient_analyze(ckt, opt).size();
  opt.record_stride = 5;
  const std::size_t thin = transient_analyze(ckt, opt).size();
  EXPECT_LT(thin, full / 3);
}

TEST(TraceApi, AveragesCrossingsAndExtremes) {
  Trace tr({"sig"});
  for (int i = 0; i <= 10; ++i) {
    tr.append(i * 0.1, {static_cast<double>(i % 2)});  // 0/1 square-ish
  }
  EXPECT_EQ(tr.crossing_times("sig", 0.5, true).size(), 5u);
  EXPECT_EQ(tr.crossing_times("sig", 0.5, false).size(), 5u);
  EXPECT_DOUBLE_EQ(tr.maximum("sig", 0.0, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(tr.minimum("sig", 0.0, 1.0), 0.0);
  EXPECT_NEAR(tr.time_average("sig", 0.0, 1.0), 0.5, 0.01);
  EXPECT_THROW(tr.signal("nope"), PreconditionError);
}

TEST(Transient, RejectsBadOptions) {
  Circuit ckt;
  ckt.add<Resistor>("R", ckt.node("a"), kGround, 1.0);
  TransientOptions opt;
  opt.t_stop = -1.0;
  EXPECT_THROW(transient_analyze(ckt, opt), PreconditionError);
}

}  // namespace
}  // namespace focv::circuit
