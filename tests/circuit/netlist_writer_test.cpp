// Netlist writer and parse/write round trips.
#include <cmath>
#include <sstream>

#include <gtest/gtest.h>

#include "circuit/dc_analysis.hpp"
#include "circuit/devices_active.hpp"
#include "circuit/devices_sources.hpp"
#include "circuit/netlist_parser.hpp"
#include "circuit/netlist_writer.hpp"
#include "circuit/transient.hpp"

namespace focv::circuit {
namespace {

double solve_node(Circuit& ckt, const std::string& node) {
  const Vector x = dc_operating_point(ckt);
  return x[static_cast<std::size_t>(ckt.find_node(node) - 1)];
}

TEST(NetlistWriter, EmitsAllSupportedCards) {
  Circuit ckt;
  parse_netlist_string(R"(
V1 in 0 DC 5
I1 0 n DC 1m
R1 in mid 3k
C1 mid 0 1u IC=2
L1 mid x 1m
D1 x 0 IS=1e-12 N=1.7
S1 in y ctl 0 RON=10 ROFF=1e9 VT=1 VW=0.2
M1 y g 0 NMOS VTO=1 KP=2m
E1 e 0 mid 0 4
G1 0 go mid 0 1m
U1 in 0 b vdd 0 BUF
)", ckt);
  const std::string out = write_netlist_string(ckt);
  for (const char* token :
       {"V1 in 0 DC 5", "R1 in mid 3000", "IC=2", "IS=", "RON=", "NMOS", "E1 ", "G1 ",
        "BUF", ".end"}) {
    EXPECT_NE(out.find(token), std::string::npos) << "missing: " << token << "\n" << out;
  }
  EXPECT_EQ(write_netlist_string(ckt).find("no card form"), std::string::npos);
}

TEST(NetlistWriter, RoundTripPreservesDcSolution) {
  Circuit original;
  parse_netlist_string(R"(
V1 in 0 DC 5
R1 in mid 3k
R2 mid 0 7k
D1 mid d IS=1e-13 N=1
Rd d 0 10k
)", original);
  const double v_mid = solve_node(original, "mid");
  const double v_d = solve_node(original, "d");

  Circuit round_trip;
  parse_netlist_string(write_netlist_string(original), round_trip);
  EXPECT_NEAR(solve_node(round_trip, "mid"), v_mid, 1e-9);
  EXPECT_NEAR(solve_node(round_trip, "d"), v_d, 1e-9);
}

TEST(NetlistWriter, RoundTripPreservesTransient) {
  Circuit original;
  parse_netlist_string(R"(
V1 in 0 PULSE(0 2 1m 1u 1u 2m 0)
R1 in out 1k
C1 out 0 100n
)", original);
  Circuit round_trip;
  parse_netlist_string(write_netlist_string(original), round_trip);
  TransientOptions opt;
  opt.t_stop = 4e-3;
  const Trace a = transient_analyze(original, opt);
  const Trace b = transient_analyze(round_trip, opt);
  for (const double t : {0.5e-3, 1.5e-3, 2.5e-3, 3.5e-3}) {
    EXPECT_NEAR(a.at("out", t), b.at("out", t), 1e-3) << "t=" << t;
  }
}

TEST(NetlistWriter, FlagsDevicesWithoutCardForm) {
  Circuit ckt;
  ckt.add<NonlinearCurrentSource>(
      "NL1", ckt.node("a"), kGround,
      [](double v) { return NonlinearCurrentSource::Eval{1e-3 - 1e-4 * v, -1e-4}; });
  std::ostringstream os;
  const int omitted = write_netlist(os, ckt);
  EXPECT_EQ(omitted, 1);
  EXPECT_NE(os.str().find("no card form"), std::string::npos);
}

TEST(NetlistWriter, DiodeCardPreservesParameters) {
  Circuit a;
  Diode::Params dp;
  dp.saturation_current = 3.7e-13;
  dp.emission_coefficient = 1.83;
  a.add<Diode>("D1", a.node("x"), kGround, dp);
  Circuit b;
  parse_netlist_string(write_netlist_string(a), b);
  // Same forward drop at 1 mA.
  auto& da = *dynamic_cast<Diode*>(a.devices()[0].get());
  auto& db = *dynamic_cast<Diode*>(b.devices()[0].get());
  EXPECT_NEAR(da.current_at(0.55), db.current_at(0.55), da.current_at(0.55) * 1e-9);
}

}  // namespace
}  // namespace focv::circuit
