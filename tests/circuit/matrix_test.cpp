#include "circuit/matrix.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "common/require.hpp"
#include "common/rng.hpp"

namespace focv::circuit {
namespace {

TEST(Matrix, MultiplyIdentityLike) {
  Matrix a(2, 2);
  a.at(0, 0) = 1.0;
  a.at(1, 1) = 2.0;
  const Vector y = a.multiply({3.0, 4.0});
  EXPECT_DOUBLE_EQ(y[0], 3.0);
  EXPECT_DOUBLE_EQ(y[1], 8.0);
}

TEST(Matrix, ClearZeroes) {
  Matrix a(2, 2);
  a.at(0, 1) = 5.0;
  a.clear();
  EXPECT_DOUBLE_EQ(a.at(0, 1), 0.0);
  EXPECT_EQ(a.rows(), 2u);
}

TEST(LuSolve, Solves2x2) {
  Matrix a(2, 2);
  a.at(0, 0) = 2.0;
  a.at(0, 1) = 1.0;
  a.at(1, 0) = 1.0;
  a.at(1, 1) = 3.0;
  const Vector x = lu_solve(a, {5.0, 10.0});
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(LuSolve, RequiresPivoting) {
  // Zero on the diagonal: fails without partial pivoting.
  Matrix a(2, 2);
  a.at(0, 0) = 0.0;
  a.at(0, 1) = 1.0;
  a.at(1, 0) = 1.0;
  a.at(1, 1) = 0.0;
  const Vector x = lu_solve(a, {2.0, 3.0});
  EXPECT_NEAR(x[0], 3.0, 1e-12);
  EXPECT_NEAR(x[1], 2.0, 1e-12);
}

TEST(LuSolve, SingularThrows) {
  Matrix a(2, 2);
  a.at(0, 0) = 1.0;
  a.at(0, 1) = 2.0;
  a.at(1, 0) = 2.0;
  a.at(1, 1) = 4.0;
  EXPECT_THROW(lu_solve(a, {1.0, 2.0}), ConvergenceError);
}

TEST(LuSolve, DimensionMismatchThrows) {
  Matrix a(2, 3);
  EXPECT_THROW(lu_solve(a, {1.0, 2.0}), PreconditionError);
  Matrix b(2, 2);
  EXPECT_THROW(lu_solve(b, {1.0}), PreconditionError);
}

// Property: random diagonally-dominant systems solve to small residual.
class LuPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(LuPropertyTest, RandomDiagonallyDominantResidual) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 31 + 7);
  const std::size_t n = 3 + GetParam() % 12;
  Matrix a(n, n);
  Vector b(n);
  for (std::size_t r = 0; r < n; ++r) {
    double off_sum = 0.0;
    for (std::size_t c = 0; c < n; ++c) {
      if (r == c) continue;
      a.at(r, c) = rng.uniform(-1.0, 1.0);
      off_sum += std::abs(a.at(r, c));
    }
    a.at(r, r) = off_sum + rng.uniform(0.5, 2.0);
    b[r] = rng.uniform(-10.0, 10.0);
  }
  Matrix a_copy = a;
  const Vector x = lu_solve(a, b);
  const Vector res = a_copy.multiply(x);
  for (std::size_t r = 0; r < n; ++r) EXPECT_NEAR(res[r], b[r], 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, LuPropertyTest, ::testing::Range(0, 25));

TEST(InfNorm, PicksLargestMagnitude) {
  EXPECT_DOUBLE_EQ(inf_norm({1.0, -7.5, 3.0}), 7.5);
  EXPECT_DOUBLE_EQ(inf_norm({}), 0.0);
}

}  // namespace
}  // namespace focv::circuit
