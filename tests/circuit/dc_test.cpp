// DC operating-point analysis: convergence strategies and correctness.
#include <cmath>

#include <gtest/gtest.h>

#include "circuit/dc_analysis.hpp"
#include "common/require.hpp"
#include "circuit/devices_active.hpp"
#include "circuit/devices_passive.hpp"
#include "circuit/devices_sources.hpp"

namespace focv::circuit {
namespace {

double node_v(const Circuit& ckt, const Vector& x, const std::string& name) {
  return x[static_cast<std::size_t>(ckt.find_node(name) - 1)];
}

TEST(DcAnalysis, LinearLadder) {
  // Five equal resistors across 5 V: taps at 4, 3, 2, 1 V.
  Circuit ckt;
  NodeId prev = ckt.node("n0");
  ckt.add<VoltageSource>("V", prev, kGround, Waveform::dc(5.0));
  for (int i = 1; i <= 5; ++i) {
    const NodeId next = (i == 5) ? kGround : ckt.node("n" + std::to_string(i));
    ckt.add<Resistor>("R" + std::to_string(i), prev, next, 1e3);
    prev = next;
  }
  const Vector x = dc_operating_point(ckt);
  for (int i = 1; i <= 4; ++i) {
    EXPECT_NEAR(node_v(ckt, x, "n" + std::to_string(i)), 5.0 - i, 1e-6);
  }
}

TEST(DcAnalysis, DiodeResistorSeries) {
  // 5 V -> 1 kOhm -> diode: I ~= (5 - 0.6)/1k, V_diode ~= 0.6.
  Circuit ckt;
  const NodeId a = ckt.node("a");
  const NodeId b = ckt.node("b");
  ckt.add<VoltageSource>("V", a, kGround, Waveform::dc(5.0));
  ckt.add<Resistor>("R", a, b, 1e3);
  ckt.add<Diode>("D", b, kGround);
  const Vector x = dc_operating_point(ckt);
  const double vd = node_v(ckt, x, "b");
  EXPECT_GT(vd, 0.5);
  EXPECT_LT(vd, 0.75);
  // KCL consistency: resistor current equals diode current.
  Circuit check;
  auto& d = check.add<Diode>("D", check.node("x"), kGround);
  EXPECT_NEAR((5.0 - vd) / 1e3, d.current_at(vd), 1e-6);
}

TEST(DcAnalysis, FloatingNodeHandledByGmin) {
  // A node connected only through a capacitor (open at DC) must still
  // solve (to ~0 V via gmin), not blow up.
  Circuit ckt;
  const NodeId a = ckt.node("a");
  const NodeId f = ckt.node("float");
  ckt.add<VoltageSource>("V", a, kGround, Waveform::dc(5.0));
  ckt.add<Resistor>("R", a, kGround, 1e3);
  ckt.add<Capacitor>("C", a, f, 1e-9);
  const Vector x = dc_operating_point(ckt);
  EXPECT_NEAR(node_v(ckt, x, "a"), 5.0, 1e-6);
  EXPECT_TRUE(std::isfinite(node_v(ckt, x, "float")));
}

TEST(DcAnalysis, InductorIsShortAtDc) {
  Circuit ckt;
  const NodeId a = ckt.node("a");
  const NodeId b = ckt.node("b");
  ckt.add<VoltageSource>("V", a, kGround, Waveform::dc(2.0));
  ckt.add<Inductor>("L", a, b, 1e-3);
  ckt.add<Resistor>("R", b, kGround, 100.0);
  const Vector x = dc_operating_point(ckt);
  EXPECT_NEAR(node_v(ckt, x, "b"), 2.0, 1e-9);
}

TEST(DcAnalysis, StiffDiodeChainNeedsContinuation) {
  // Two stacked diodes fed from a high voltage through a small resistor:
  // a hard start for plain Newton from x = 0.
  Circuit ckt;
  const NodeId a = ckt.node("a");
  const NodeId b = ckt.node("b");
  const NodeId c = ckt.node("c");
  ckt.add<VoltageSource>("V", a, kGround, Waveform::dc(50.0));
  ckt.add<Resistor>("R", a, b, 10.0);
  Diode::Params dp;
  dp.saturation_current = 1e-15;
  ckt.add<Diode>("D1", b, c, dp);
  ckt.add<Diode>("D2", c, kGround, dp);
  const Vector x = dc_operating_point(ckt);
  const double vb = node_v(ckt, x, "b");
  // ~ (50 - 2*0.75)/10 A through, so vb ~ 1.5-1.8 V.
  EXPECT_GT(vb, 1.2);
  EXPECT_LT(vb, 2.2);
}

TEST(DcAnalysis, InitialGuessIsUsed) {
  Circuit ckt;
  const NodeId a = ckt.node("a");
  ckt.add<VoltageSource>("V", a, kGround, Waveform::dc(1.0));
  ckt.add<Resistor>("R", a, kGround, 1.0);
  ckt.finalize();
  Vector guess(static_cast<std::size_t>(ckt.unknown_count()), 0.5);
  const Vector x = dc_operating_point(ckt, {}, &guess);
  EXPECT_NEAR(node_v(ckt, x, "a"), 1.0, 1e-9);
}

TEST(DcAnalysis, BadGuessSizeThrows) {
  Circuit ckt;
  ckt.add<VoltageSource>("V", ckt.node("a"), kGround, Waveform::dc(1.0));
  ckt.finalize();
  Vector guess(99, 0.0);
  EXPECT_THROW((dc_operating_point(ckt, DcOptions{}, &guess)), PreconditionError);
}

}  // namespace
}  // namespace focv::circuit
